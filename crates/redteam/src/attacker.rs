//! The attacker node: a scripted process with raw-frame capability.

use bytes::Bytes;
use modbus::{Request, Response, TcpFrame};
use plc::emulator::PLC_MODBUS_PORT;
use scada::commercial::{CommercialCommand, CommercialStatus, HMI_PORT, MASTER_PORT};
use simnet::packet::{ArpBody, ArpOp, EtherPayload, Frame, Packet, TransportKind};
use simnet::process::{Context, Process};
use simnet::time::{SimDuration, SimTime};
use simnet::types::{IpAddr, MacAddr, Port};
use simnet::wire::Wire;

/// Local port the attacker uses for its own traffic.
const ATTACK_PORT: Port = Port(31337);

/// One scripted attack step, executed at its scheduled time.
#[derive(Clone, Debug)]
pub enum AttackStep {
    /// TCP SYN scan of a port range on a target.
    PortScan {
        /// Target host.
        target: IpAddr,
        /// First port (inclusive).
        from_port: u16,
        /// Last port (inclusive).
        to_port: u16,
    },
    /// Gratuitous-ARP poisoning: tell `victim` that `claim_ip` lives at
    /// the attacker's MAC. Repeats `count` times, 50 ms apart.
    ArpPoison {
        /// Host whose ARP table is being poisoned.
        victim: IpAddr,
        /// The IP address the attacker impersonates.
        claim_ip: IpAddr,
        /// Number of gratuitous replies.
        count: u32,
    },
    /// A burst of datagrams at `pps` packets/second for `duration`,
    /// optionally with a spoofed source IP.
    DosBurst {
        /// Target host.
        target: IpAddr,
        /// Target port.
        port: Port,
        /// Packets per second.
        pps: u32,
        /// Burst length.
        duration: SimDuration,
        /// Forged source address, if any.
        spoof_src: Option<IpAddr>,
        /// Payload size in bytes.
        payload: usize,
    },
    /// Unauthenticated Modbus device-id read + configuration dump.
    ModbusDump {
        /// The PLC.
        plc: IpAddr,
    },
    /// Unauthenticated Modbus configuration upload.
    ModbusUpload {
        /// The PLC.
        plc: IpAddr,
        /// The malicious configuration image.
        image: Vec<u8>,
    },
    /// Forge a commercial SCADA status frame to an HMI.
    SpoofCommercialStatus {
        /// The HMI.
        hmi: IpAddr,
        /// Positions to display.
        positions: Vec<bool>,
        /// Sequence number to claim.
        seq: u64,
    },
    /// Inject an unauthenticated supervisory command at a commercial master.
    InjectCommercialCommand {
        /// The master.
        master: IpAddr,
        /// Breaker index.
        breaker: u16,
        /// Desired state.
        close: bool,
    },
    /// Send arbitrary bytes at a Spines port (probing / replaying without
    /// keys).
    SpinesProbe {
        /// Target daemon host.
        target: IpAddr,
        /// Spines port.
        port: Port,
        /// Raw bytes to send.
        payload: Vec<u8>,
    },
    /// A raw broadcast frame with a source-spoofed IP datagram — reaches
    /// hosts whose firewall trusts the forged peer.
    SpoofedProbe {
        /// Destination IP.
        target: IpAddr,
        /// Destination port.
        port: Port,
        /// Forged source address.
        spoof_src: IpAddr,
        /// Raw bytes to send.
        payload: Vec<u8>,
    },
    /// Claim another device's MAC address (CAM-table takeover on learning
    /// switches; ingress port security drops it on static switches).
    MacSpoof {
        /// The MAC being impersonated.
        impersonate: MacAddr,
        /// Frames to emit.
        count: u32,
    },
    /// An ICMP echo (also triggers ARP resolution — used to test whether
    /// internal addressing leaks through cross-interface ARP answers).
    Ping {
        /// Target IP.
        target: IpAddr,
    },
}

/// What the attacker observed.
#[derive(Clone, Debug, Default)]
pub struct Observations {
    /// SYN probes sent.
    pub syns_sent: u64,
    /// Scan responses seen as `(port, open)`.
    pub scan_results: Vec<(u16, bool)>,
    /// ARP replies sent.
    pub arp_replies_sent: u64,
    /// DoS packets sent.
    pub dos_packets_sent: u64,
    /// Dumped device identification text.
    pub device_id: Option<String>,
    /// Dumped configuration image.
    pub dumped_config: Option<Vec<u8>>,
    /// Whether a config upload was acknowledged.
    pub upload_acked: bool,
    /// Packets intercepted in transit (post-poisoning MITM).
    pub intercepted: u64,
    /// Status frames rewritten and relayed onward.
    pub rewritten: u64,
    /// Commercial commands injected.
    pub commands_injected: u64,
    /// Spoofed status frames sent.
    pub statuses_spoofed: u64,
    /// Spines probes sent.
    pub spines_probes_sent: u64,
    /// MAC-spoof frames sent.
    pub mac_spoofs_sent: u64,
    /// Echo replies received (reachability evidence).
    pub pongs_received: u64,
}

/// Man-in-the-middle behaviour once traffic is steered to the attacker.
#[derive(Clone, Debug)]
pub struct MitmConfig {
    /// Rewrite commercial status frames to show every breaker closed
    /// (hiding the attacker's own actions from the operator).
    pub rewrite_status_all_closed: bool,
    /// Forward (possibly rewritten) traffic so the victim stays unaware.
    pub forward: bool,
}

struct Scheduled {
    at: SimTime,
    step: AttackStep,
}

/// The attacker process.
pub struct Attacker {
    plan: Vec<Scheduled>,
    /// Observations recorded so far.
    pub observed: Observations,
    /// MITM behaviour for transit traffic.
    pub mitm: Option<MitmConfig>,
    /// Burst state: (step index, packets remaining, interval).
    bursting: Option<(usize, u64, SimDuration)>,
    transaction: u16,
    outstanding_dump: Option<&'static str>,
}

impl Attacker {
    /// Creates an attacker with an empty plan.
    pub fn new() -> Self {
        Attacker {
            plan: Vec::new(),
            observed: Observations::default(),
            mitm: None,
            bursting: None,
            transaction: 0,
            outstanding_dump: None,
        }
    }

    /// Schedules a step at absolute simulation time `at`.
    pub fn schedule(&mut self, at: SimTime, step: AttackStep) -> &mut Self {
        self.plan.push(Scheduled { at, step });
        self
    }

    fn send_modbus(&mut self, ctx: &mut Context<'_>, plc: IpAddr, req: Request) {
        self.transaction = self.transaction.wrapping_add(1);
        let frame = TcpFrame::new(self.transaction, 1, req.encode());
        let pkt = Packet::udp(
            ctx.ip(0),
            plc,
            ATTACK_PORT,
            PLC_MODBUS_PORT,
            Bytes::from(frame.encode()),
        );
        ctx.send(0, pkt);
    }

    fn execute(&mut self, ctx: &mut Context<'_>, idx: usize) {
        let step = self.plan[idx].step.clone();
        match step {
            AttackStep::PortScan {
                target,
                from_port,
                to_port,
            } => {
                for port in from_port..=to_port {
                    self.observed.syns_sent += 1;
                    ctx.send(0, Packet::syn(ctx.ip(0), target, ATTACK_PORT, Port(port)));
                }
            }
            AttackStep::ArpPoison {
                victim: _,
                claim_ip,
                count,
            } => {
                // Gratuitous replies broadcast onto the segment.
                for _ in 0..count {
                    self.observed.arp_replies_sent += 1;
                    let frame = Frame {
                        src_mac: ctx.mac(0),
                        dst_mac: MacAddr::BROADCAST,
                        payload: EtherPayload::Arp(ArpBody {
                            op: ArpOp::Reply,
                            sender_ip: claim_ip,
                            sender_mac: ctx.mac(0),
                            target_ip: claim_ip,
                        }),
                    };
                    ctx.send_raw(0, frame);
                }
            }
            AttackStep::DosBurst { pps, duration, .. } => {
                let total = (pps as u64 * duration.as_micros()) / 1_000_000;
                let interval = SimDuration::from_micros(1_000_000 / pps as u64);
                self.bursting = Some((idx, total, interval));
                self.dos_packet(ctx, idx);
            }
            AttackStep::ModbusDump { plc } => {
                self.outstanding_dump = Some("device_id");
                self.send_modbus(ctx, plc, Request::ReadDeviceId);
            }
            AttackStep::ModbusUpload { plc, image } => {
                self.send_modbus(ctx, plc, Request::ConfigUpload { image });
            }
            AttackStep::SpoofCommercialStatus {
                hmi,
                positions,
                seq,
            } => {
                self.observed.statuses_spoofed += 1;
                let currents = vec![0; positions.len()];
                let status = CommercialStatus {
                    seq,
                    positions,
                    currents,
                };
                let pkt = Packet::udp(ctx.ip(0), hmi, ATTACK_PORT, HMI_PORT, status.to_wire());
                ctx.send(0, pkt);
            }
            AttackStep::InjectCommercialCommand {
                master,
                breaker,
                close,
            } => {
                self.observed.commands_injected += 1;
                let cmd = CommercialCommand { breaker, close };
                let pkt = Packet::udp(ctx.ip(0), master, ATTACK_PORT, MASTER_PORT, cmd.to_wire());
                ctx.send(0, pkt);
            }
            AttackStep::SpinesProbe {
                target,
                port,
                payload,
            } => {
                self.observed.spines_probes_sent += 1;
                let pkt = Packet::udp(ctx.ip(0), target, ATTACK_PORT, port, Bytes::from(payload));
                ctx.send(0, pkt);
            }
            AttackStep::SpoofedProbe {
                target,
                port,
                spoof_src,
                payload,
            } => {
                self.observed.spines_probes_sent += 1;
                let pkt = Packet::udp(spoof_src, target, ATTACK_PORT, port, Bytes::from(payload));
                let frame = Frame {
                    src_mac: ctx.mac(0),
                    dst_mac: MacAddr::BROADCAST,
                    payload: EtherPayload::Ip(pkt),
                };
                ctx.send_raw(0, frame);
            }
            AttackStep::MacSpoof { impersonate, count } => {
                for _ in 0..count {
                    self.observed.mac_spoofs_sent += 1;
                    // A frame whose source claims the victim's MAC; payload
                    // is arbitrary (the point is the CAM side effect).
                    let pkt = Packet::udp(
                        ctx.ip(0),
                        IpAddr::BROADCAST,
                        ATTACK_PORT,
                        Port(9),
                        Bytes::from_static(b"cam"),
                    );
                    let frame = Frame {
                        src_mac: impersonate,
                        dst_mac: MacAddr::BROADCAST,
                        payload: EtherPayload::Ip(pkt),
                    };
                    ctx.send_raw(0, frame);
                }
            }
            AttackStep::Ping { target } => {
                let pkt = Packet {
                    src_ip: ctx.ip(0),
                    dst_ip: target,
                    src_port: ATTACK_PORT,
                    dst_port: Port(0),
                    kind: TransportKind::Ping,
                    payload: Bytes::new(),
                    trace: None,
                };
                ctx.send(0, pkt);
            }
        }
    }

    fn dos_packet(&mut self, ctx: &mut Context<'_>, idx: usize) {
        let AttackStep::DosBurst {
            target,
            port,
            spoof_src,
            payload,
            ..
        } = self.plan[idx].step.clone()
        else {
            return;
        };
        let Some((_, remaining, interval)) = self.bursting else {
            return;
        };
        if remaining == 0 {
            self.bursting = None;
            return;
        }
        self.observed.dos_packets_sent += 1;
        let src = spoof_src.unwrap_or(ctx.ip(0));
        if spoof_src.is_some() {
            // Spoofed source requires a raw frame (the OS path would use
            // our own address); the destination MAC must be guessed or
            // learned — use broadcast to let the switch deliver it.
            let pkt = Packet::udp(
                src,
                target,
                ATTACK_PORT,
                port,
                Bytes::from(vec![0u8; payload]),
            );
            let frame = Frame {
                src_mac: ctx.mac(0),
                dst_mac: MacAddr::BROADCAST,
                payload: EtherPayload::Ip(pkt),
            };
            ctx.send_raw(0, frame);
        } else {
            let pkt = Packet::udp(
                src,
                target,
                ATTACK_PORT,
                port,
                Bytes::from(vec![0u8; payload]),
            );
            ctx.send(0, pkt);
        }
        self.bursting = Some((idx, remaining - 1, interval));
        ctx.set_timer(interval, BURST_TIMER);
    }
}

impl Default for Attacker {
    fn default() -> Self {
        Self::new()
    }
}

const BURST_TIMER: u64 = 1_000_000;

impl Process for Attacker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(ATTACK_PORT);
        for (i, s) in self.plan.iter().enumerate() {
            let delay = s.at.since(ctx.now());
            ctx.set_timer(delay, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        if timer == BURST_TIMER {
            if let Some((idx, _, _)) = self.bursting {
                self.dos_packet(ctx, idx);
            }
            return;
        }
        let idx = timer as usize;
        if idx < self.plan.len() {
            self.execute(ctx, idx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        match pkt.kind {
            TransportKind::Pong => self.observed.pongs_received += 1,
            TransportKind::TcpSynAck => self.observed.scan_results.push((pkt.src_port.0, true)),
            TransportKind::TcpRst => self.observed.scan_results.push((pkt.src_port.0, false)),
            TransportKind::Udp
                // Possibly a Modbus reply to a dump.
                if pkt.src_port == PLC_MODBUS_PORT => {
                    if let Some(frame) = TcpFrame::decode(&pkt.payload) {
                        if let Some(Response::DeviceId { text }) =
                            Response::decode(&frame.pdu, &Request::ReadDeviceId)
                        {
                            self.observed.device_id = Some(text);
                            // Follow up with the config dump.
                            self.outstanding_dump = Some("config");
                            let plc = pkt.src_ip;
                            self.transaction = self.transaction.wrapping_add(1);
                            let f = TcpFrame::new(self.transaction, 1, Request::ConfigDownload.encode());
                            let out = Packet::udp(ctx.ip(0), plc, ATTACK_PORT, PLC_MODBUS_PORT, Bytes::from(f.encode()));
                            ctx.send(0, out);
                        } else if let Some(Response::ConfigImage { image }) =
                            Response::decode(&frame.pdu, &Request::ConfigDownload)
                        {
                            self.observed.dumped_config = Some(image);
                        } else if let Some(Response::ConfigAccepted) =
                            Response::decode(&frame.pdu, &Request::ConfigUpload { image: vec![] })
                        {
                            self.observed.upload_acked = true;
                        }
                    }
                }
            _ => {}
        }
    }

    fn on_transit(&mut self, ctx: &mut Context<'_>, _ifidx: usize, pkt: Packet) {
        // Traffic steered to us by ARP poisoning.
        self.observed.intercepted += 1;
        let Some(mitm) = self.mitm.clone() else {
            return;
        };
        if !mitm.forward {
            return;
        }
        let mut forwarded = pkt.clone();
        if mitm.rewrite_status_all_closed {
            if let Ok(status) = CommercialStatus::from_wire(&pkt.payload) {
                self.observed.rewritten += 1;
                let rewritten = CommercialStatus {
                    seq: status.seq,
                    positions: vec![true; status.positions.len()],
                    currents: status.currents,
                };
                forwarded.payload = rewritten.to_wire();
            }
        }
        // Re-inject toward the true destination. Our own ARP view of the
        // victim is intact (we only poisoned the *other* hosts).
        ctx.send(0, forwarded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_accumulates() {
        let mut a = Attacker::new();
        a.schedule(
            SimTime(0),
            AttackStep::PortScan {
                target: IpAddr::new(1, 1, 1, 1),
                from_port: 1,
                to_port: 10,
            },
        );
        a.schedule(
            SimTime(5),
            AttackStep::ModbusDump {
                plc: IpAddr::new(2, 2, 2, 2),
            },
        );
        assert_eq!(a.plan.len(), 2);
    }
}
