//! `spire-sim` — run any of the reproduction's experiments from the
//! command line.
//!
//! ```text
//! spire-sim <command> [--seed N]
//!
//! commands:
//!   figures        build and print Figures 1, 2 and 4
//!   e1             red team vs. the commercial SCADA system
//!   e2             red team vs. Spire (network attacks)
//!   e3             compromised-replica excursion
//!   e4 [--days N]  plant deployment, N compressed days (default 6)
//!   e5             end-to-end reaction time, Spire vs. commercial
//!   e6             assumption breach + ground-truth recovery
//!   e7             MANA detection (incidents + board)
//!   e7b            MANA ROC curves (both model families)
//!   e8             replica-requirement ablation (3f+1 vs 3f+2k+1)
//!   e9             diversity/recovery race
//!   e10            hardening ablation matrix
//!   e11            ordering saturation: ramp the update rate, find the knee
//!   e12 [--days N] chaos soak: N compressed days under a seeded fault
//!                  schedule with continuous invariant checking
//!   e13            wide-area site failover: sever + heal one full site
//!                  per paper configuration (6@1, 3+3, 2+2+1+1)
//!   e16 [--days N] closed-loop intrusion response: both attack-campaign
//!                  shapes, periodic vs feedback recovery (N waves each)
//!   bench          time e1-e11 wall-clock, report sim-events/sec
//!   all            everything above, in order
//!
//! flags:
//!   --seed N       simulation seed (default 42)
//!   --days N       e4/e12 compressed days, e16 campaign waves (default 6)
//!   --steps N      e11 ramp steps to run (default: the full ramp)
//!   --batch N      e11: Merkle-batch PO-Request dissemination, up to N
//!                  updates per batch (default 0 = legacy per-update
//!                  broadcast). Selects the extended rate ramp
//!   --pipeline K   e11: keep up to K sequences in flight (default 1 =
//!                  serialized ordering)
//!   --threads N    simulator worker threads (default 1). Any value
//!                  produces bit-for-bit identical results; the
//!                  conservative parallel scheduler only changes speed
//!   --json FILE    write e11 / e12 / e13 / bench results as JSON to FILE
//!   --metrics      print the metrics registry + journal digest after
//!                  e4/e5 (see EXPERIMENTS.md, "Observability")
//!   --trace        echo journal records live as the simulation runs
//!   --trace-export FILE
//!                  write the causal span trees of e4/e5 as Chrome
//!                  trace-event JSON (open in Perfetto; see
//!                  EXPERIMENTS.md, "Tracing")
//!   --prof FILE    enable the deterministic cost profiler: per-phase
//!                  attribution (simulated time, bytes, crypto ops)
//!                  prints after the run and folded stacks — ready for
//!                  `flamegraph.pl`/speedscope — are written to FILE.
//!                  e11 additionally prints a per-step attribution
//!                  report with an exact telescoping verdict
//!   --health-every N
//!                  flight recorder: journal per-replica Prime health
//!                  gauges and per-link Spines queue depths every N
//!                  protocol ticks (default 0 = off)
//! ```

use std::process::ExitCode;

use bench::chaos_experiment::{chaos_json, e12_chaos_soak, render_chaos};
use bench::figures::{fig1_conventional, fig2_spire, fig4_hmi};
use bench::harness::{bench_json, render_bench, run_bench};
use bench::mana_experiment::{e7_mana_detection, e7_roc, render_mana, render_roc};
use bench::plant_experiments::{
    e4_plant_deployment_traced, e5_reaction_time_traced, render_reaction,
};
use bench::recovery_experiments::{
    e6_ground_truth, e8_recovery_ablation, e9_diversity_ablation, render_diversity,
};
use bench::redteam_experiments::{
    e10_hardening_ablation, e1_commercial_attacks, e2_spire_network_attacks, e3_replica_excursion,
    render_ablation,
};
use bench::response_experiment::{campaign_json, e16_campaign, render_campaign, Shape};
use bench::saturation::{
    e11_batched_rates, e11_default_rates, e11_saturation_with, render_saturation,
    saturation_attribution, saturation_json, SaturationOpts,
};
use bench::site_experiment::{e13_site_failover, render_site_failover, site_failover_json};

struct Options {
    seed: u64,
    days: u64,
    steps: usize,
    threads: usize,
    metrics: bool,
    trace: bool,
    trace_export: Option<String>,
    json: Option<String>,
    prof: Option<String>,
    health_every: u64,
    batch: u32,
    pipeline: u32,
}

fn parse_flags(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        seed: 42,
        days: 6,
        // "Whole ramp" by default; --steps N truncates whichever ramp
        // (legacy or batched) the e11 arm selects.
        steps: usize::MAX,
        threads: 1,
        metrics: false,
        trace: false,
        trace_export: None,
        json: None,
        prof: None,
        health_every: 0,
        batch: 0,
        pipeline: 1,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            flag @ ("--seed" | "--days" | "--steps" | "--threads" | "--health-every"
            | "--batch" | "--pipeline") => {
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| format!("{flag} requires a value"))?;
                let parsed: u64 = value
                    .parse()
                    .map_err(|_| format!("{flag}: not a number: {value}"))?;
                match flag {
                    "--seed" => opts.seed = parsed,
                    "--days" => opts.days = parsed,
                    "--steps" => opts.steps = parsed as usize,
                    "--health-every" => opts.health_every = parsed,
                    "--batch" => opts.batch = parsed as u32,
                    "--pipeline" => opts.pipeline = (parsed as u32).max(1),
                    _ => opts.threads = (parsed as usize).max(1),
                }
            }
            "--metrics" => opts.metrics = true,
            "--trace" => opts.trace = true,
            "--trace-export" => {
                i += 1;
                let path = args
                    .get(i)
                    .ok_or_else(|| "--trace-export requires a file path".to_string())?;
                opts.trace_export = Some(path.clone());
            }
            "--json" => {
                i += 1;
                let path = args
                    .get(i)
                    .ok_or_else(|| "--json requires a file path".to_string())?;
                opts.json = Some(path.clone());
            }
            "--prof" => {
                i += 1;
                let path = args
                    .get(i)
                    .ok_or_else(|| "--prof requires a file path".to_string())?;
                opts.prof = Some(path.clone());
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Writes `json` to `path`. Returns false (and explains on stderr) when
/// the path cannot be written, so `main` can exit nonzero.
fn write_json(path: &str, json: &str) -> bool {
    match std::fs::write(path, json) {
        Ok(()) => {
            eprintln!("json written to {path}");
            true
        }
        Err(err) => {
            eprintln!("failed to write {path}: {err}");
            false
        }
    }
}

/// Writes the journal's span trees as Chrome trace-event JSON. Returns
/// false (and explains on stderr) when the path cannot be written.
fn export_trace(path: &str, journal: &[obs::TimedEvent]) -> bool {
    let json = obs::trace::chrome_trace_json(journal);
    match std::fs::write(path, &json) {
        Ok(()) => {
            eprintln!("trace written to {path} (open in https://ui.perfetto.dev)");
            true
        }
        Err(err) => {
            eprintln!("failed to write {path}: {err}");
            false
        }
    }
}

/// Writes the profiler's folded-stack output (`stack value` lines, the
/// format `flamegraph.pl` and speedscope ingest). Returns false (and
/// explains on stderr) when the path cannot be written.
fn write_folded(path: &str, profile: &obs::prof::Profile) -> bool {
    match std::fs::write(path, profile.folded()) {
        Ok(()) => {
            eprintln!("folded stacks written to {path}");
            true
        }
        Err(err) => {
            eprintln!("failed to write {path}: {err}");
            false
        }
    }
}

/// Runs `command`. `None` means the command is unknown; `Some(ok)` runs
/// it, with `ok` false when a requested output file could not be written.
fn run(command: &str, opts: &Options) -> Option<bool> {
    let mut ok = true;
    match command {
        "figures" => {
            println!("{}", fig1_conventional(opts.seed));
            println!("{}", fig2_spire(opts.seed + 1));
            println!("{}", fig4_hmi(opts.seed + 2));
        }
        "e1" => println!("{}", e1_commercial_attacks(opts.seed).render()),
        "e2" => {
            let r = e2_spire_network_attacks(opts.seed);
            println!("{}", r.report.render());
            println!(
                "frames {} -> {}   arp rejections {}   spines auth failures {}",
                r.frames_before, r.frames_after, r.arp_rejections, r.spines_auth_failures
            );
        }
        "e3" => {
            let r = e3_replica_excursion(opts.seed);
            for s in &r.stages {
                println!(
                    "stage {}: {:<55} disrupted: {:<5}  {}",
                    s.number, s.action, s.disrupted_service, s.evidence
                );
            }
            println!("spire survived: {}", r.spire_survived());
        }
        "e4" => {
            let r = e4_plant_deployment_traced(
                opts.seed,
                opts.days,
                30,
                opts.trace,
                opts.trace_export.is_some(),
            );
            println!(
                "days: {} ({} s/day)   recoveries: {}   min executed: {}\n\
                 hmi frames: {}   view changes: {}   longest display gap: {}\n\
                 replicas consistent: {}",
                r.days,
                r.seconds_per_day,
                r.recoveries,
                r.min_executed,
                r.hmi_frames,
                r.view_changes,
                r.longest_display_gap,
                r.replicas_consistent,
            );
            if opts.metrics {
                println!("\n{}", r.obs.render());
            }
            if let Some(path) = &opts.trace_export {
                ok &= export_trace(path, &r.obs.journal);
            }
        }
        "e5" => {
            let r = e5_reaction_time_traced(opts.seed, 10, opts.trace);
            println!("{}", render_reaction(&r));
            if opts.metrics {
                println!("{}", r.obs.render());
            }
            if let Some(path) = &opts.trace_export {
                ok &= export_trace(path, &r.obs.journal);
            }
        }
        "e6" => println!("{:#?}", e6_ground_truth(opts.seed)),
        "e7" => println!("{}", render_mana(&e7_mana_detection(opts.seed))),
        "e7b" => println!("{}", render_roc(&e7_roc(opts.seed))),
        "e8" => {
            for arm in e8_recovery_ablation(opts.seed) {
                println!(
                    "{:<36} n={}   executed: {:>3}   live: {}",
                    arm.label, arm.n, arm.executed_during_window, arm.stayed_live
                );
            }
        }
        "e9" => println!(
            "{}",
            render_diversity(&e9_diversity_ablation(opts.seed, 20))
        ),
        "e10" => println!("{}", render_ablation(&e10_hardening_ablation(opts.seed))),
        "e11" => {
            let sat_opts = SaturationOpts {
                batch_max: opts.batch,
                pipeline: opts.pipeline,
            };
            let rates = if opts.batch > 0 {
                e11_batched_rates()
            } else {
                e11_default_rates()
            };
            let rates = &rates[..opts.steps.clamp(1, rates.len())];
            let run = e11_saturation_with(opts.seed, rates, sat_opts);
            println!("{}", render_saturation(&run));
            if obs::prof::enabled() {
                println!("{}", saturation_attribution(&run));
            }
            if let Some(path) = &opts.json {
                ok &= write_json(path, &saturation_json(&run));
            }
        }
        "e12" => {
            let run = e12_chaos_soak(opts.seed, opts.days, 30);
            println!("{}", render_chaos(&run));
            if let Some(path) = &opts.json {
                ok &= write_json(path, &chaos_json(&run));
            }
        }
        "e13" => {
            let run = e13_site_failover(opts.seed);
            println!("{}", render_site_failover(&run));
            if let Some(path) = &opts.json {
                ok &= write_json(path, &site_failover_json(&run));
            }
        }
        "e16" => {
            let a = e16_campaign(opts.seed, Shape::ImplantFlood, opts.days);
            let b = e16_campaign(opts.seed, Shape::DoubleCompromise, opts.days);
            println!("{}", render_campaign(&a));
            println!("{}", render_campaign(&b));
            if let Some(path) = &opts.json {
                let json = format!("[\n{},\n{}\n]\n", campaign_json(&a), campaign_json(&b));
                ok &= write_json(path, &json);
            }
        }
        "bench" => {
            let r = run_bench(opts.seed);
            println!("{}", render_bench(&r));
            if let Some(path) = &opts.json {
                ok &= write_json(path, &bench_json(&r));
            }
        }
        "all" => {
            for c in [
                "figures", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e7b", "e8", "e9", "e10",
                "e11", "e12", "e13", "e16",
            ] {
                println!("\n===== {c} =====\n");
                ok &= run(c, opts).unwrap_or(false);
            }
        }
        _ => return None,
    }
    Some(ok)
}

/// Every runnable experiment id, as listed by usage and unknown-command
/// errors.
const COMMANDS: &[&str] = &[
    "figures", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e7b", "e8", "e9", "e10", "e11", "e12",
    "e13", "e16", "bench", "all",
];

fn usage() -> String {
    format!(
        "usage: spire-sim <{}> [--seed N] [--days N] [--steps N] [--batch N] [--pipeline K] \
         [--threads N] [--metrics] [--trace] [--trace-export FILE] [--json FILE] [--prof FILE] \
         [--health-every N]",
        COMMANDS.join("|")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(&args[1..]) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("{err}");
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    // Every simulation built from here on shards onto this many worker
    // threads (digest-identical to --threads 1 at any count).
    simnet::sim::set_default_threads(opts.threads);
    // Arm the profiler/flight recorder before any simulation runs; both
    // force the sequential scheduler and neither perturbs run digests.
    obs::prof::set_enabled(opts.prof.is_some());
    obs::prof::set_health_every(opts.health_every);
    let mut ok = match run(command, &opts) {
        Some(ok) => ok,
        None => {
            eprintln!(
                "unknown command: {command}\navailable commands: {}",
                COMMANDS.join(" ")
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.prof {
        let profile = obs::prof::take();
        obs::prof::set_enabled(false);
        println!("{}", obs::report::attribution_markdown(&profile, None));
        ok &= write_folded(path, &profile);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
