//! Modbus framing: RTU (serial, CRC-16) and TCP (MBAP header).
//!
//! The proxy↔PLC cable uses RTU framing; attackers on the operations
//! network of the commercial system speak Modbus/TCP to the exposed PLC.

use crate::crc;

/// An RTU frame: unit id + PDU + CRC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RtuFrame {
    /// Slave/unit address (0 = broadcast).
    pub unit: u8,
    /// The PDU bytes (function code + data).
    pub pdu: Vec<u8>,
}

impl RtuFrame {
    /// Serializes with trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pdu.len() + 3);
        out.push(self.unit);
        out.extend_from_slice(&self.pdu);
        crc::append_crc(&mut out);
        out
    }

    /// Parses and CRC-checks a frame.
    pub fn decode(data: &[u8]) -> Option<RtuFrame> {
        let body = crc::check_and_strip(data)?;
        let (&unit, pdu) = body.split_first()?;
        if pdu.is_empty() {
            return None;
        }
        Some(RtuFrame {
            unit,
            pdu: pdu.to_vec(),
        })
    }
}

/// The MBAP header used by Modbus/TCP.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MbapHeader {
    /// Transaction identifier (echoed by the server).
    pub transaction: u16,
    /// Protocol identifier (always 0 for Modbus).
    pub protocol: u16,
    /// Unit identifier.
    pub unit: u8,
}

/// A Modbus/TCP frame: MBAP header + PDU.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpFrame {
    /// The header.
    pub header: MbapHeader,
    /// The PDU bytes.
    pub pdu: Vec<u8>,
}

impl TcpFrame {
    /// Builds a frame with protocol id 0.
    pub fn new(transaction: u16, unit: u8, pdu: Vec<u8>) -> Self {
        TcpFrame {
            header: MbapHeader {
                transaction,
                protocol: 0,
                unit,
            },
            pdu,
        }
    }

    /// Serializes: transaction(2) protocol(2) length(2) unit(1) pdu.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7 + self.pdu.len());
        out.extend_from_slice(&self.header.transaction.to_be_bytes());
        out.extend_from_slice(&self.header.protocol.to_be_bytes());
        out.extend_from_slice(&((self.pdu.len() + 1) as u16).to_be_bytes());
        out.push(self.header.unit);
        out.extend_from_slice(&self.pdu);
        out
    }

    /// Parses a frame; checks the declared length and protocol id.
    pub fn decode(data: &[u8]) -> Option<TcpFrame> {
        if data.len() < 8 {
            return None;
        }
        let transaction = u16::from_be_bytes([data[0], data[1]]);
        let protocol = u16::from_be_bytes([data[2], data[3]]);
        if protocol != 0 {
            return None;
        }
        let length = u16::from_be_bytes([data[4], data[5]]) as usize;
        if data.len() != 6 + length || length < 2 {
            return None;
        }
        let unit = data[6];
        Some(TcpFrame {
            header: MbapHeader {
                transaction,
                protocol,
                unit,
            },
            pdu: data[7..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtu_roundtrip() {
        let f = RtuFrame {
            unit: 0x11,
            pdu: vec![0x03, 0x00, 0x6B, 0x00, 0x03],
        };
        let bytes = f.encode();
        assert_eq!(RtuFrame::decode(&bytes), Some(f));
    }

    #[test]
    fn rtu_bad_crc_rejected() {
        let f = RtuFrame {
            unit: 1,
            pdu: vec![0x01, 0, 0, 0, 1],
        };
        let mut bytes = f.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(RtuFrame::decode(&bytes), None);
    }

    #[test]
    fn rtu_empty_pdu_rejected() {
        let mut bytes = vec![0x05u8];
        crate::crc::append_crc(&mut bytes);
        assert_eq!(RtuFrame::decode(&bytes), None);
    }

    #[test]
    fn tcp_roundtrip() {
        let f = TcpFrame::new(0x1234, 0xFF, vec![0x01, 0x00, 0x00, 0x00, 0x08]);
        let bytes = f.encode();
        assert_eq!(TcpFrame::decode(&bytes), Some(f));
    }

    #[test]
    fn tcp_wrong_protocol_rejected() {
        let mut bytes = TcpFrame::new(1, 1, vec![0x01]).encode();
        bytes[3] = 7;
        assert_eq!(TcpFrame::decode(&bytes), None);
    }

    #[test]
    fn tcp_wrong_length_rejected() {
        let mut bytes = TcpFrame::new(1, 1, vec![0x01, 0x02]).encode();
        bytes[5] += 1;
        assert_eq!(TcpFrame::decode(&bytes), None);
        assert_eq!(TcpFrame::decode(&bytes[..5]), None);
    }
}
