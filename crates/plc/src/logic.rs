//! The PLC's configuration image — the ladder-logic parameters that the
//! vendor maintenance function codes (0x5A/0x5B) dump and replace.
//!
//! §IV-B: the red team "were able to ... perform a memory dump of the PLC
//! to obtain its configuration. They then uploaded modified configuration
//! files, enabling them to control the PLC." [`LogicConfig`] is that
//! configuration: it deterministically alters how coil commands map to
//! breaker actions, so a tampered upload really does seize control.

use simnet::wire::{DecodeError, Reader, Writer};

/// Magic bytes identifying a valid configuration image.
const MAGIC: u32 = 0x504C_4331; // "PLC1"

/// The deserialized PLC configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogicConfig {
    /// Invert every coil command (close means open). A crude but visible
    /// way for an attacker to flip the plant's state.
    pub invert_commands: bool,
    /// Bitmask of breakers forced open regardless of commands.
    pub force_open_mask: u32,
    /// Bitmask of breakers forced closed regardless of commands.
    pub force_closed_mask: u32,
    /// Whether commands from the master are honored at all.
    pub accept_remote_commands: bool,
    /// Free-form setpoint table (models the rest of the ladder program).
    pub setpoints: Vec<u16>,
}

impl Default for LogicConfig {
    fn default() -> Self {
        LogicConfig {
            invert_commands: false,
            force_open_mask: 0,
            force_closed_mask: 0,
            accept_remote_commands: true,
            setpoints: vec![0; 8],
        }
    }
}

impl LogicConfig {
    /// The factory image every PLC ships with.
    pub fn factory() -> Self {
        Self::default()
    }

    /// Whether this config is untampered.
    pub fn is_factory(&self) -> bool {
        *self == Self::factory()
    }

    /// Applies the config to a commanded value for breaker `idx`:
    /// returns `None` if remote commands are ignored, otherwise the
    /// (possibly inverted/forced) value to apply.
    pub fn transform_command(&self, idx: usize, closed: bool) -> Option<bool> {
        if !self.accept_remote_commands {
            return None;
        }
        let mut v = if self.invert_commands {
            !closed
        } else {
            closed
        };
        if idx < 32 {
            if self.force_open_mask & (1 << idx) != 0 {
                v = false;
            }
            if self.force_closed_mask & (1 << idx) != 0 {
                v = true;
            }
        }
        Some(v)
    }

    /// Serializes to the image format 0x5A returns.
    pub fn to_image(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(MAGIC)
            .put_bool(self.invert_commands)
            .put_u32(self.force_open_mask)
            .put_u32(self.force_closed_mask)
            .put_bool(self.accept_remote_commands)
            .put_u16(self.setpoints.len() as u16);
        for s in &self.setpoints {
            w.put_u16(*s);
        }
        w.finish().to_vec()
    }

    /// Parses an uploaded image. Malformed images are rejected (the PLC
    /// keeps its old configuration), matching real devices that checksum
    /// their images.
    pub fn from_image(image: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(image);
        if r.get_u32()? != MAGIC {
            return Err(DecodeError::new("config magic"));
        }
        let invert_commands = r.get_bool()?;
        let force_open_mask = r.get_u32()?;
        let force_closed_mask = r.get_u32()?;
        let accept_remote_commands = r.get_bool()?;
        let n = r.get_u16()? as usize;
        let mut setpoints = Vec::with_capacity(n);
        for _ in 0..n {
            setpoints.push(r.get_u16()?);
        }
        r.expect_end()?;
        Ok(LogicConfig {
            invert_commands,
            force_open_mask,
            force_closed_mask,
            accept_remote_commands,
            setpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip() {
        let cfg = LogicConfig {
            invert_commands: true,
            force_open_mask: 0b101,
            force_closed_mask: 0b010,
            accept_remote_commands: false,
            setpoints: vec![7, 8, 9],
        };
        let image = cfg.to_image();
        assert_eq!(LogicConfig::from_image(&image).expect("roundtrip"), cfg);
    }

    #[test]
    fn factory_transform_is_identity() {
        let cfg = LogicConfig::factory();
        assert!(cfg.is_factory());
        assert_eq!(cfg.transform_command(0, true), Some(true));
        assert_eq!(cfg.transform_command(5, false), Some(false));
    }

    #[test]
    fn inverted_commands_flip() {
        let cfg = LogicConfig {
            invert_commands: true,
            ..Default::default()
        };
        assert_eq!(cfg.transform_command(0, true), Some(false));
        assert_eq!(cfg.transform_command(0, false), Some(true));
        assert!(!cfg.is_factory());
    }

    #[test]
    fn force_masks_override_commands_and_inversion() {
        let cfg = LogicConfig {
            invert_commands: true,
            force_open_mask: 1 << 3,
            force_closed_mask: 1 << 4,
            ..Default::default()
        };
        assert_eq!(cfg.transform_command(3, true), Some(false));
        assert_eq!(cfg.transform_command(3, false), Some(false));
        assert_eq!(cfg.transform_command(4, false), Some(true));
    }

    #[test]
    fn remote_lockout_drops_commands() {
        let cfg = LogicConfig {
            accept_remote_commands: false,
            ..Default::default()
        };
        assert_eq!(cfg.transform_command(0, true), None);
    }

    #[test]
    fn malformed_images_rejected() {
        assert!(LogicConfig::from_image(&[]).is_err());
        assert!(LogicConfig::from_image(&[1, 2, 3]).is_err());
        let mut good = LogicConfig::factory().to_image();
        good[0] ^= 0xFF; // break magic
        assert!(LogicConfig::from_image(&good).is_err());
        let mut trailing = LogicConfig::factory().to_image();
        trailing.push(0);
        assert!(LogicConfig::from_image(&trailing).is_err());
    }
}
