//! Quickstart: build a minimal Spire deployment (4 SCADA-master replicas,
//! one PLC behind a proxy, one HMI), run the breaker-flip cycle, and watch
//! the HMI — the whole intrusion-tolerant pipeline in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use plc::topology::{fig4_topology, Scenario};
use prime::types::Config as PrimeConfig;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

fn main() {
    // 4 replicas tolerate f = 1 intrusion; the Figure 4 seven-breaker
    // distribution topology; the automatic breaker-flip cycle from the
    // red-team exercise.
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution)
        .with_cycle(
            Scenario::RedTeamDistribution,
            SimDuration::from_millis(500),
            6,
        );
    let mut deployment = Deployment::build(cfg, HardeningProfile::deployed(), 42);

    println!("running 10 simulated seconds of SCADA operation...\n");
    deployment.run_for(SimDuration::from_secs(10));

    // The operator's view, rendered from vote-gated display frames.
    let topology = fig4_topology();
    println!("{}", deployment.hmi(0).hmi.render("jhu", &topology));

    // What happened underneath.
    for i in 0..4 {
        let host = deployment.replica(i);
        println!(
            "replica {i}: executed {} ordered updates, view {}, {} state transfers",
            host.replica.exec_seq(),
            host.replica.view(),
            host.stats.state_transfers
        );
    }
    let proxy = deployment.proxy(0);
    println!(
        "proxy: {} polls, {} status updates sent, {} vote-gated commands actuated",
        proxy.stats.polls_completed, proxy.stats.updates_sent, proxy.stats.commands_actuated
    );
    println!(
        "plc: {} loads energized, {} breaker operations logged",
        deployment.plc(0).energized_loads(),
        deployment.plc(0).position_log.len()
    );
}
