//! The SCADA master's application state.

use std::collections::BTreeMap;

use itcrypto::sha256::{Digest, Sha256};
use simnet::wire::{DecodeError, Reader, Wire, Writer};

use crate::updates::ScadaUpdate;

/// Per-scenario live state.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScenarioState {
    /// Last reported breaker positions.
    pub positions: Vec<bool>,
    /// Last reported currents.
    pub currents: Vec<u16>,
    /// Highest poll sequence applied (stale polls are ignored).
    pub last_poll_seq: u64,
    /// Desired breaker states from ordered HMI commands (what the master
    /// is currently trying to make true in the field).
    pub desired: BTreeMap<u16, bool>,
}

impl Wire for ScenarioState {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.positions.len() as u32);
        for &p in &self.positions {
            w.put_bool(p);
        }
        w.put_u32(self.currents.len() as u32);
        for &c in &self.currents {
            w.put_u16(c);
        }
        w.put_u64(self.last_poll_seq);
        w.put_u32(self.desired.len() as u32);
        for (&b, &v) in &self.desired {
            w.put_u16(b);
            w.put_bool(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let np = r.get_u32()? as usize;
        if np > 4096 {
            return Err(DecodeError::new("positions length"));
        }
        let positions = (0..np).map(|_| r.get_bool()).collect::<Result<_, _>>()?;
        let nc = r.get_u32()? as usize;
        if nc > 4096 {
            return Err(DecodeError::new("currents length"));
        }
        let currents = (0..nc).map(|_| r.get_u16()).collect::<Result<_, _>>()?;
        let last_poll_seq = r.get_u64()?;
        let nd = r.get_u32()? as usize;
        if nd > 4096 {
            return Err(DecodeError::new("desired length"));
        }
        let mut desired = BTreeMap::new();
        for _ in 0..nd {
            let b = r.get_u16()?;
            let v = r.get_bool()?;
            desired.insert(b, v);
        }
        Ok(ScenarioState {
            positions,
            currents,
            last_poll_seq,
            desired,
        })
    }
}

/// The full master state across scenarios.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScadaState {
    scenarios: BTreeMap<String, ScenarioState>,
    /// Updates executed (part of the digest so replicas at different
    /// execution points never compare equal).
    pub executed: u64,
}

impl ScadaState {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one ordered update. Returns whether it changed state.
    pub fn apply(&mut self, update: &ScadaUpdate) -> bool {
        self.executed += 1;
        match update {
            ScadaUpdate::RtuStatus {
                scenario,
                poll_seq,
                positions,
                currents,
            } => {
                let s = self.scenarios.entry(scenario.clone()).or_default();
                if *poll_seq <= s.last_poll_seq {
                    return false; // stale poll
                }
                s.last_poll_seq = *poll_seq;
                let changed = s.positions != *positions || s.currents != *currents;
                s.positions = positions.clone();
                s.currents = currents.clone();
                changed
            }
            ScadaUpdate::HmiCommand {
                scenario,
                breaker,
                close,
            } => {
                let s = self.scenarios.entry(scenario.clone()).or_default();
                s.desired.insert(*breaker, *close);
                true
            }
            ScadaUpdate::FieldRebaseline {
                scenario,
                positions,
            } => {
                let s = self.scenarios.entry(scenario.clone()).or_default();
                s.positions = positions.clone();
                s.currents = vec![0; positions.len()];
                s.desired.clear();
                true
            }
        }
    }

    /// Live state for a scenario.
    pub fn scenario(&self, tag: &str) -> Option<&ScenarioState> {
        self.scenarios.get(tag)
    }

    /// All scenario tags with state.
    pub fn scenario_tags(&self) -> impl Iterator<Item = &str> {
        self.scenarios.keys().map(|s| s.as_str())
    }

    /// Structural digest over the whole state.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(&self.executed.to_be_bytes());
        for (tag, s) in &self.scenarios {
            h.update(tag.as_bytes());
            h.update(&s.to_wire());
        }
        h.finalize()
    }

    /// Serializes the full state (application-level state transfer).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.executed);
        w.put_u32(self.scenarios.len() as u32);
        for (tag, s) in &self.scenarios {
            w.put_bytes(tag.as_bytes());
            s.encode(&mut w);
        }
        w.finish().to_vec()
    }

    /// Restores from a snapshot; empty/invalid input yields an empty state.
    pub fn restore(snapshot: &[u8]) -> Self {
        let mut r = Reader::new(snapshot);
        let mut state = ScadaState::new();
        let Ok(executed) = r.get_u64() else {
            return state;
        };
        let Ok(n) = r.get_u32() else { return state };
        state.executed = executed;
        for _ in 0..n {
            let Ok(tag_bytes) = r.get_bytes() else {
                return ScadaState::new();
            };
            let Ok(tag) = String::from_utf8(tag_bytes) else {
                return ScadaState::new();
            };
            let Ok(s) = ScenarioState::decode(&mut r) else {
                return ScadaState::new();
            };
            state.scenarios.insert(tag, s);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(tag: &str, seq: u64, pos: Vec<bool>) -> ScadaUpdate {
        let currents = pos.iter().map(|&p| if p { 100 } else { 0 }).collect();
        ScadaUpdate::RtuStatus {
            scenario: tag.into(),
            poll_seq: seq,
            positions: pos,
            currents,
        }
    }

    #[test]
    fn rtu_status_applies_and_stale_ignored() {
        let mut st = ScadaState::new();
        assert!(st.apply(&status("jhu", 2, vec![true, false])));
        assert!(
            !st.apply(&status("jhu", 1, vec![false, false])),
            "stale poll ignored"
        );
        let s = st.scenario("jhu").expect("scenario");
        assert_eq!(s.positions, vec![true, false]);
        assert_eq!(s.last_poll_seq, 2);
        assert_eq!(st.executed, 2);
    }

    #[test]
    fn hmi_command_records_desired() {
        let mut st = ScadaState::new();
        st.apply(&ScadaUpdate::HmiCommand {
            scenario: "plant".into(),
            breaker: 1,
            close: false,
        });
        assert_eq!(
            st.scenario("plant").expect("scenario").desired.get(&1),
            Some(&false)
        );
    }

    #[test]
    fn rebaseline_resets_scenario() {
        let mut st = ScadaState::new();
        st.apply(&status("jhu", 5, vec![true, true]));
        st.apply(&ScadaUpdate::HmiCommand {
            scenario: "jhu".into(),
            breaker: 0,
            close: false,
        });
        st.apply(&ScadaUpdate::FieldRebaseline {
            scenario: "jhu".into(),
            positions: vec![false, true],
        });
        let s = st.scenario("jhu").expect("scenario");
        assert_eq!(s.positions, vec![false, true]);
        assert!(s.desired.is_empty());
    }

    #[test]
    fn digest_distinguishes_states() {
        let mut a = ScadaState::new();
        let mut b = ScadaState::new();
        a.apply(&status("jhu", 1, vec![true]));
        b.apply(&status("jhu", 1, vec![false]));
        assert_ne!(a.digest(), b.digest());
        let mut c = ScadaState::new();
        c.apply(&status("jhu", 1, vec![true]));
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut st = ScadaState::new();
        st.apply(&status("jhu", 3, vec![true, false, true]));
        st.apply(&status("gen0", 1, vec![true, true, true]));
        st.apply(&ScadaUpdate::HmiCommand {
            scenario: "jhu".into(),
            breaker: 2,
            close: false,
        });
        let restored = ScadaState::restore(&st.snapshot());
        assert_eq!(restored, st);
        assert_eq!(restored.digest(), st.digest());
    }

    #[test]
    fn restore_from_garbage_is_empty() {
        let st = ScadaState::restore(&[1, 2, 3]);
        assert_eq!(st.executed, 0);
        assert_eq!(st.scenario_tags().count(), 0);
        let st2 = ScadaState::restore(&[]);
        assert_eq!(st2, ScadaState::new());
    }
}
