//! The experiment benches: `cargo bench --bench experiments` regenerates
//! every table and figure of the paper's evaluation (printed to stdout,
//! one deterministic run each) and Criterion-times the lighter experiment
//! kernels. The heavyweight whole-system experiments (E2–E4, E7, E10)
//! print their results once rather than being re-run dozens of times by
//! the statistics loop; their end-to-end runtimes are reported inline.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::figures::{fig1_conventional, fig2_spire, fig4_hmi};
use bench::mana_experiment::{e7_mana_detection, e7_roc, render_mana, render_roc};
use bench::plant_experiments::{e4_plant_deployment, e5_reaction_time, render_reaction};
use bench::recovery_experiments::{
    e6_ground_truth, e8_recovery_ablation, e9_diversity_ablation, render_diversity,
};
use bench::redteam_experiments::{
    e10_hardening_ablation, e1_commercial_attacks, e2_spire_network_attacks, e3_replica_excursion,
    render_ablation,
};

fn banner(title: &str) {
    println!("\n{}\n{title}\n{}", "=".repeat(78), "=".repeat(78));
}

/// Runs `f` once, printing its wall-clock runtime.
fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    println!("[{label}: completed in {:.2?}]", start.elapsed());
    out
}

/// Regenerates every table and figure (one deterministic run each).
fn print_all_tables(c: &mut Criterion) {
    banner("Figures 1, 2, 4 — architectures built and exercised");
    println!("{}", fig1_conventional(1));
    println!("{}", fig2_spire(2));
    println!("{}", fig4_hmi(3));

    banner("E1 — red team vs. commercial SCADA (§IV-B, first phase)");
    println!("{}", timed("e1", || e1_commercial_attacks(11)).render());

    banner("E2 — red team vs. Spire: network attacks (§IV-B)");
    let result = timed("e2", || e2_spire_network_attacks(22));
    println!("{}", result.report.render());
    println!(
        "breaker cycle frames: {} before attacks, {} after (service never stopped)",
        result.frames_before, result.frames_after
    );
    println!(
        "static-ARP rejections: {}   spines auth failures: {}",
        result.arp_rejections, result.spines_auth_failures
    );

    banner("E3 — compromised-replica excursion (§IV-B, day 3)");
    let report = timed("e3", || e3_replica_excursion(33));
    for stage in &report.stages {
        println!(
            "stage {}: {:<55} disrupted: {:<5}  {}",
            stage.number, stage.action, stage.disrupted_service, stage.evidence
        );
    }
    println!(
        "spire survived the excursion: {} (frames {} -> {})",
        report.spire_survived(),
        report.frames_before,
        report.frames_after
    );

    banner("E4 — plant deployment: six compressed days, continuous operation (§V)");
    let run = timed("e4", || e4_plant_deployment(44, 6, 30));
    println!(
        "days: {} (x{} s/day compressed)   proactive recoveries: {}\n\
         min executed: {}   hmi frames (3 locations): {}   view changes: {}\n\
         longest display gap: {}   replicas consistent: {}",
        run.days,
        run.seconds_per_day,
        run.recoveries,
        run.min_executed,
        run.hmi_frames,
        run.view_changes,
        run.longest_display_gap,
        run.replicas_consistent
    );

    banner("E5 — end-to-end reaction time: Spire vs. commercial (§V)");
    println!(
        "{}",
        render_reaction(&timed("e5", || e5_reaction_time(55, 10)))
    );

    banner("E6 — assumption breach and ground-truth recovery (§III-A)");
    let run = timed("e6", || e6_ground_truth(66));
    println!(
        "replicas crashed: {} / 6   intact: {}   needed for replica recovery: {}\n\
         replica-based recovery possible: {}\n\
         state rebuilt from field devices matches reality: {}\n\
         historian: {} records lost forever, {} present-state records recovered",
        run.crashed,
        run.intact,
        run.needed_for_replica_recovery,
        run.replica_recovery_possible,
        run.field_rebuild_correct,
        run.historian_records_lost,
        run.historian_records_recovered
    );

    banner("E7 — MANA: train on baseline, detect the red team (§III-C)");
    println!("{}", render_mana(&timed("e7", || e7_mana_detection(77))));

    banner("E7b — MANA ROC curves (Gaussian vs. k-means)");
    println!("{}", render_roc(&timed("e7b", || e7_roc(78))));

    banner("E8 — replica-requirement ablation: 3f+1 vs 3f+2k+1 (§II)");
    for arm in timed("e8", || e8_recovery_ablation(88)) {
        println!(
            "{:<36} n={}   executed during window: {:>3}   stayed live: {}",
            arm.label, arm.n, arm.executed_during_window, arm.stayed_live
        );
    }

    banner("E9 — diversity/recovery race (§II)");
    println!(
        "{}",
        render_diversity(&timed("e9", || e9_diversity_ablation(99, 20)))
    );

    banner("E10 — hardening ablation: which attack lands when a §III-B step is skipped");
    println!(
        "{}",
        render_ablation(&timed("e10", || e10_hardening_ablation(110)))
    );

    // Keep Criterion happy with one trivial benchmark in this group.
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("fig4_topology_solver", |b| {
        let topo = plc::topology::fig4_topology();
        let closed = vec![true; 7];
        b.iter(|| topo.energized_loads(std::hint::black_box(&closed)))
    });
    group.finish();
}

/// Criterion timing of the light experiment kernels.
fn time_light_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("e1_commercial_attacks", |b| {
        b.iter(|| e1_commercial_attacks(11))
    });
    group.bench_function("e5_reaction_time_4_flips", |b| {
        b.iter(|| e5_reaction_time(55, 4))
    });
    group.bench_function("e6_ground_truth", |b| b.iter(|| e6_ground_truth(66)));
    group.bench_function("e8_recovery_ablation", |b| {
        b.iter(|| e8_recovery_ablation(88))
    });
    group.bench_function("e9_diversity_5_trials", |b| {
        b.iter(|| e9_diversity_ablation(99, 5))
    });
    group.bench_function("fig1_conventional", |b| b.iter(|| fig1_conventional(1)));
    group.finish();
}

criterion_group!(experiments, print_all_tables, time_light_experiments);
criterion_main!(experiments);
