//! CRC-16/MODBUS (polynomial 0x8005 reflected = 0xA001, init 0xFFFF).

/// Computes the Modbus RTU CRC over `data`. The result is transmitted
/// little-endian (low byte first) per the Modbus serial spec.
///
/// # Examples
///
/// ```
/// use modbus::crc::crc16;
///
/// // Canonical check value: CRC of "123456789" is 0x4B37.
/// assert_eq!(crc16(b"123456789"), 0x4B37);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= byte as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xA001;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Appends the CRC (little-endian) to a buffer.
pub fn append_crc(buf: &mut Vec<u8>) {
    let crc = crc16(buf);
    buf.push((crc & 0xff) as u8);
    buf.push((crc >> 8) as u8);
}

/// Validates and strips a trailing CRC; returns the body on success.
pub fn check_and_strip(data: &[u8]) -> Option<&[u8]> {
    if data.len() < 2 {
        return None;
    }
    let (body, tail) = data.split_at(data.len() - 2);
    let expect = crc16(body);
    let got = u16::from(tail[0]) | (u16::from(tail[1]) << 8);
    (expect == got).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Classic example: 01 03 00 00 00 0A → CRC C5 CD.
        let frame = [0x01u8, 0x03, 0x00, 0x00, 0x00, 0x0A];
        let crc = crc16(&frame);
        assert_eq!(crc & 0xff, 0xC5);
        assert_eq!(crc >> 8, 0xCD);
    }

    #[test]
    fn append_then_check_roundtrip() {
        let mut buf = vec![0x11, 0x05, 0x00, 0xAC, 0xFF, 0x00];
        append_crc(&mut buf);
        assert_eq!(check_and_strip(&buf), Some(&buf[..buf.len() - 2]));
    }

    #[test]
    fn corrupted_frame_rejected() {
        let mut buf = vec![1, 2, 3, 4];
        append_crc(&mut buf);
        buf[1] ^= 0x80;
        assert_eq!(check_and_strip(&buf), None);
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(check_and_strip(&[0x01]), None);
        assert_eq!(check_and_strip(&[]), None);
    }

    #[test]
    fn empty_body_crc() {
        assert_eq!(crc16(&[]), 0xFFFF);
    }
}
