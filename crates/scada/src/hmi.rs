//! The operator's Human-Machine Interface.
//!
//! Renders the Figure 4 power topology as text, timestamps every applied
//! frame (the §V reaction-time measurement reads these), and exposes the
//! "large box that changed from black to white based on the breaker
//! state" that the plant's sensor watched.

use std::collections::BTreeMap;

use plc::topology::PowerTopology;
use simnet::time::SimTime;

/// A display update received from the masters (via the HMI proxy, which
/// already enforced `f+1` matching copies).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HmiUpdate {
    /// Scenario tag.
    pub scenario: String,
    /// Breaker positions.
    pub positions: Vec<bool>,
    /// Currents.
    pub currents: Vec<u16>,
}

/// One scenario's display state.
#[derive(Clone, Debug, Default)]
struct Pane {
    positions: Vec<bool>,
    currents: Vec<u16>,
    updates: u64,
}

/// The HMI.
#[derive(Debug, Default)]
pub struct Hmi {
    panes: BTreeMap<String, Pane>,
    /// Every applied display update: `(time, scenario)`.
    pub update_log: Vec<(SimTime, String)>,
    /// The breaker driving the measurement box: `(scenario, index)`.
    pub sensor_breaker: Option<(String, u16)>,
    /// Black/white box transitions: `(time, white)`.
    pub box_transitions: Vec<(SimTime, bool)>,
    box_white: bool,
}

impl Hmi {
    /// Creates an empty HMI.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configures the §V measurement box to track one breaker. If the
    /// scenario already has display state, the box color initializes from
    /// it (so the first flip is measured as a transition, not an
    /// initialization).
    pub fn set_sensor_breaker(&mut self, scenario: impl Into<String>, breaker: u16) {
        let scenario = scenario.into();
        if let Some(pane) = self.panes.get(&scenario) {
            self.box_white = pane
                .positions
                .get(breaker as usize)
                .copied()
                .unwrap_or(false);
        }
        self.sensor_breaker = Some((scenario, breaker));
    }

    /// Applies a display update at `now`. Returns whether anything shown
    /// to the operator changed.
    pub fn apply(&mut self, update: HmiUpdate, now: SimTime) -> bool {
        let pane = self.panes.entry(update.scenario.clone()).or_default();
        let changed = pane.positions != update.positions || pane.currents != update.currents;
        pane.positions = update.positions;
        pane.currents = update.currents;
        pane.updates += 1;
        self.update_log.push((now, update.scenario.clone()));
        if let Some((tag, idx)) = &self.sensor_breaker {
            if *tag == update.scenario {
                let white = pane.positions.get(*idx as usize).copied().unwrap_or(false);
                if white != self.box_white {
                    self.box_white = white;
                    self.box_transitions.push((now, white));
                }
            }
        }
        changed
    }

    /// Current positions for a scenario pane.
    pub fn positions(&self, scenario: &str) -> Option<&[bool]> {
        self.panes.get(scenario).map(|p| p.positions.as_slice())
    }

    /// Number of display updates applied for a scenario.
    pub fn update_count(&self, scenario: &str) -> u64 {
        self.panes.get(scenario).map_or(0, |p| p.updates)
    }

    /// Current color of the measurement box (true = white = closed).
    pub fn box_is_white(&self) -> bool {
        self.box_white
    }

    /// Renders a scenario pane against its topology, Figure 4 style:
    /// breakers as `[■]` (closed) / `[ ]` (open), loads as `⚡`/`·`.
    pub fn render(&self, scenario: &str, topology: &PowerTopology) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== HMI: {scenario} ===\n"));
        let Some(pane) = self.panes.get(scenario) else {
            out.push_str("(no data)\n");
            return out;
        };
        for edge in topology.breakers() {
            let closed = pane
                .positions
                .get(edge.breaker as usize)
                .copied()
                .unwrap_or(false);
            let current = pane
                .currents
                .get(edge.breaker as usize)
                .copied()
                .unwrap_or(0);
            let mark = if closed { "[■]" } else { "[ ]" };
            out.push_str(&format!("  {mark} {:<7} {:>4} A\n", edge.name, current));
        }
        let energized = topology.energized_loads(&pane.positions);
        for (id, name) in topology.loads() {
            let lit = energized.get(&id).copied().unwrap_or(false);
            let mark = if lit { "⚡" } else { "·" };
            out.push_str(&format!("  {mark} {name}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc::topology::fig4_topology;

    fn frame(tag: &str, positions: Vec<bool>) -> HmiUpdate {
        let currents = positions.iter().map(|&p| u16::from(p) * 100).collect();
        HmiUpdate {
            scenario: tag.into(),
            positions,
            currents,
        }
    }

    #[test]
    fn apply_tracks_changes_and_log() {
        let mut hmi = Hmi::new();
        assert!(hmi.apply(frame("jhu", vec![true; 7]), SimTime(10)));
        assert!(
            !hmi.apply(frame("jhu", vec![true; 7]), SimTime(20)),
            "no visible change"
        );
        assert!(hmi.apply(frame("jhu", vec![false; 7]), SimTime(30)));
        assert_eq!(hmi.update_log.len(), 3);
        assert_eq!(hmi.update_count("jhu"), 3);
        assert_eq!(hmi.positions("jhu"), Some(vec![false; 7].as_slice()));
    }

    #[test]
    fn sensor_box_transitions_on_tracked_breaker() {
        let mut hmi = Hmi::new();
        hmi.set_sensor_breaker("plant", 1);
        hmi.apply(frame("plant", vec![true, true, true]), SimTime(100));
        assert!(hmi.box_is_white());
        // Flip the tracked breaker open → box goes black.
        hmi.apply(frame("plant", vec![true, false, true]), SimTime(200));
        assert!(!hmi.box_is_white());
        // Untracked scenario does not move the box.
        hmi.apply(frame("jhu", vec![true; 7]), SimTime(300));
        assert_eq!(
            hmi.box_transitions,
            vec![(SimTime(100), true), (SimTime(200), false)]
        );
    }

    #[test]
    fn render_shows_breakers_and_buildings() {
        let mut hmi = Hmi::new();
        let topo = fig4_topology();
        let mut positions = vec![true; 7];
        positions[1] = false; // B57 open → buildings 1,2 dark
        hmi.apply(frame("jhu", positions), SimTime(1));
        let art = hmi.render("jhu", &topo);
        assert!(art.contains("[■] B10-1"));
        assert!(art.contains("[ ] B57"));
        assert!(art.contains("· Building 1"));
        assert!(art.contains("⚡ Building 3"));
    }

    #[test]
    fn render_without_data() {
        let hmi = Hmi::new();
        assert!(hmi.render("nope", &fig4_topology()).contains("(no data)"));
    }
}
