//! Experiment E7: MANA trained on the deployment's own baseline traffic,
//! then exposed to the red-team attack sequence.

use crate::harness::RunMeta;
use mana::features::{FeatureVector, WindowExtractor};
use mana::ids::{AlertKind, ManaInstance};
use mana::kmeans::{roc_curve, KMeansModel, RocPoint};
use mana::model::GaussianModel;
use plc::topology::Scenario;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use redteam::attacker::{AttackStep, Attacker};
use simnet::sim::{InterfaceSpec, NodeSpec};
use simnet::time::SimDuration;
use simnet::types::IpAddr;
use spire::config::{SpireConfig, EXTERNAL_SPINES_PORT};
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

/// E7 result.
#[derive(Clone, Debug)]
pub struct ManaRun {
    /// Windows used for training (the baseline capture).
    pub training_windows: usize,
    /// Windows scored during the monitored phase.
    pub scored_windows: u64,
    /// False-positive rate on the pre-attack clean segment.
    pub clean_flag_rate: f64,
    /// Whether the port scan raised a PortScan incident.
    pub detected_scan: bool,
    /// Whether ARP poisoning raised an ArpAnomaly incident.
    pub detected_arp: bool,
    /// Whether the DoS burst raised a TrafficFlood incident.
    pub detected_flood: bool,
    /// Total correlated incidents.
    pub incidents: usize,
    /// The rendered situational-awareness board.
    pub board: String,
    /// Determinism capture of the deployment (digest + event count).
    pub meta: RunMeta,
}

/// E7 — train on the operations network baseline, then watch the red
/// team's attacks appear as classified incidents.
pub fn e7_mana_detection(seed: u64) -> ManaRun {
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution)
        .with_cycle(
            Scenario::RedTeamDistribution,
            SimDuration::from_millis(500),
            0,
        );
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..4 {
        d.replica_mut(i).set_timing(Timing {
            aru_interval: SimDuration::from_millis(10),
            pp_interval: SimDuration::from_millis(10),
            suspect_timeout: SimDuration::from_millis(2_000),
            checkpoint_interval: 20,
            catchup_timeout: SimDuration::from_millis(300),
        });
    }
    let mut mana = ManaInstance::new("MANA 2 (spire ops)", SimDuration::from_millis(250));

    // Baseline capture ("24-hour packet capture", compressed to 20 s of
    // steady operation) → train.
    d.run_for(SimDuration::from_secs(20));
    let records = d.sim.drain_tap(d.external_tap);
    let training_windows = {
        mana.ingest(records);
        mana.advance_to(d.now());
        mana.finish_training();
        mana.model().expect("trained").trained_windows
    };

    // Clean monitored segment: measure the false-positive rate.
    d.run_for(SimDuration::from_secs(10));
    let records = d.sim.drain_tap(d.external_tap);
    mana.ingest(records);
    mana.advance_to(d.now());
    let clean_flag_rate = mana.flag_rate();
    let incidents_before_attack = mana.alerts.len();

    // The red team arrives: scan, poison, flood.
    let t0 = d.now();
    let replica_ext = d.cfg.replica_external_ip(0);
    let mut attacker = Attacker::new();
    attacker.schedule(
        t0 + SimDuration::from_millis(500),
        AttackStep::PortScan {
            target: replica_ext,
            from_port: 8000,
            to_port: 8400,
        },
    );
    attacker.schedule(
        t0 + SimDuration::from_secs(3),
        AttackStep::ArpPoison {
            victim: d.cfg.hmi_ip(0),
            claim_ip: replica_ext,
            count: 60,
        },
    );
    attacker.schedule(
        t0 + SimDuration::from_secs(6),
        AttackStep::DosBurst {
            target: replica_ext,
            port: EXTERNAL_SPINES_PORT,
            pps: 3_000,
            duration: SimDuration::from_secs(2),
            spoof_src: None,
            payload: 700,
        },
    );
    let mut spec = NodeSpec::new(
        "red-team",
        vec![InterfaceSpec::dynamic(IpAddr::new(10, 20, 0, 66))],
        Box::new(attacker),
    );
    spec.promiscuous = true;
    d.attach_external_attacker(spec);
    d.run_for(SimDuration::from_secs(10));
    let records = d.sim.drain_tap(d.external_tap);
    mana.ingest(records);
    mana.advance_to(d.now());

    let detected = |kind: AlertKind| mana.alerts.iter().any(|a| a.kind == kind);
    let board = mana::board::Board::render(&[&mana], d.now());
    ManaRun {
        training_windows,
        scored_windows: mana.windows_scored,
        clean_flag_rate,
        detected_scan: detected(AlertKind::PortScan),
        detected_arp: detected(AlertKind::ArpAnomaly),
        detected_flood: detected(AlertKind::TrafficFlood),
        incidents: mana.alerts.len() - incidents_before_attack,
        board,
        meta: RunMeta::capture("e7.deployment", &d.obs, &d.sim),
    }
}

/// E7b result: ROC comparison of MANA's two model families.
#[derive(Clone, Debug)]
pub struct RocRun {
    /// Labeled windows evaluated (clean + attack).
    pub windows: usize,
    /// Attack-labeled windows among them.
    pub attack_windows: usize,
    /// Area under the ROC curve for the Gaussian model.
    pub auc_gaussian: f64,
    /// Area under the ROC curve for the k-means model.
    pub auc_kmeans: f64,
    /// The Gaussian model's ROC points (the figure's series).
    pub curve_gaussian: Vec<RocPoint>,
    /// Determinism capture of the deployment (digest + event count).
    pub meta: RunMeta,
}

/// E7b — the detection-quality figure: label every monitored window by
/// whether a known attack was active, score with both model families, and
/// compute ROC curves.
pub fn e7_roc(seed: u64) -> RocRun {
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution)
        .with_cycle(
            Scenario::RedTeamDistribution,
            SimDuration::from_millis(500),
            0,
        );
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    let window = SimDuration::from_millis(250);
    let mut extractor = WindowExtractor::new(window);

    // Baseline capture → train both models.
    d.run_for(SimDuration::from_secs(20));
    let mut training = extractor.push(d.sim.drain_tap(d.external_tap));
    training.extend(extractor.flush_until(d.now()));
    let gaussian = GaussianModel::train(&training);
    let kmeans = KMeansModel::train(&training, 4, 12, seed);

    // Attack phase with precisely known intervals.
    let t0 = d.now();
    let replica_ext = d.cfg.replica_external_ip(0);
    let mut attacker = Attacker::new();
    let scan_at = t0 + SimDuration::from_millis(500);
    attacker.schedule(
        scan_at,
        AttackStep::PortScan {
            target: replica_ext,
            from_port: 8000,
            to_port: 8400,
        },
    );
    let arp_at = t0 + SimDuration::from_secs(3);
    attacker.schedule(
        arp_at,
        AttackStep::ArpPoison {
            victim: d.cfg.hmi_ip(0),
            claim_ip: replica_ext,
            count: 60,
        },
    );
    let dos_at = t0 + SimDuration::from_secs(6);
    let dos_len = SimDuration::from_secs(2);
    attacker.schedule(
        dos_at,
        AttackStep::DosBurst {
            target: replica_ext,
            port: EXTERNAL_SPINES_PORT,
            pps: 3_000,
            duration: dos_len,
            spoof_src: None,
            payload: 700,
        },
    );
    let mut spec = NodeSpec::new(
        "red-team",
        vec![InterfaceSpec::dynamic(IpAddr::new(10, 20, 0, 66))],
        Box::new(attacker),
    );
    spec.promiscuous = true;
    d.attach_external_attacker(spec);
    d.run_for(SimDuration::from_secs(10));
    let mut monitored = extractor.push(d.sim.drain_tap(d.external_tap));
    monitored.extend(extractor.flush_until(d.now()));

    // Ground-truth labels from the attack schedule.
    let in_interval = |w: &FeatureVector, start: simnet::time::SimTime, len: SimDuration| {
        w.window_start + window > start && w.window_start < start + len
    };
    let labeled: Vec<(&FeatureVector, bool)> = monitored
        .iter()
        .map(|w| {
            let attack = in_interval(w, scan_at, SimDuration::from_millis(250))
                || in_interval(w, arp_at, SimDuration::from_millis(250))
                || in_interval(w, dos_at, dos_len);
            (w, attack)
        })
        .collect();
    let gaussian_samples: Vec<(f64, bool)> = labeled
        .iter()
        .map(|(w, a)| (gaussian.score(w).max_z, *a))
        .collect();
    let kmeans_samples: Vec<(f64, bool)> =
        labeled.iter().map(|(w, a)| (kmeans.score(w), *a)).collect();
    let (curve_gaussian, auc_gaussian) = roc_curve(&gaussian_samples);
    let (_, auc_kmeans) = roc_curve(&kmeans_samples);
    RocRun {
        windows: labeled.len(),
        attack_windows: labeled.iter().filter(|(_, a)| *a).count(),
        auc_gaussian,
        auc_kmeans,
        curve_gaussian,
        meta: RunMeta::capture("e7b.deployment", &d.obs, &d.sim),
    }
}

/// Renders the E7b ROC summary (the figure's data series).
pub fn render_roc(run: &RocRun) -> String {
    let mut out = format!(
        "windows: {} ({} attack-labeled)\nAUC gaussian: {:.3}   AUC k-means: {:.3}\n\nfpr     tpr     (gaussian ROC)\n",
        run.windows, run.attack_windows, run.auc_gaussian, run.auc_kmeans
    );
    for p in run.curve_gaussian.iter().take(20) {
        out.push_str(&format!("{:.3}   {:.3}\n", p.fpr, p.tpr));
    }
    out
}

/// Renders the E7 summary.
pub fn render_mana(run: &ManaRun) -> String {
    format!(
        "training windows: {}\nscored windows:  {}\nclean-segment flag rate: {:.4}\n\
         port scan detected:  {}\narp poisoning detected: {}\ndos flood detected:  {}\n\
         correlated incidents: {}\n\n{}",
        run.training_windows,
        run.scored_windows,
        run.clean_flag_rate,
        run.detected_scan,
        run.detected_arp,
        run.detected_flood,
        run.incidents,
        run.board
    )
}
