//! Continuous invariant checking for chaos soaks.
//!
//! The checker is sampled by the [`ChaosDriver`](crate::driver::ChaosDriver)
//! after every simulation step and asserts the paper's core guarantees
//! *while faults are being injected*, not just at the end of a run:
//!
//! * **INV-AGREEMENT** (safety, always on): no two replicas may ever
//!   report different application digests for the same executed sequence
//!   number. Observations are compared across time, so a divergence is
//!   caught even if the two replicas are never sampled simultaneously.
//! * **INV-HMI-TRUTH** (safety, always on): every breaker-position vector
//!   an HMI renders must be a state the PLC ground truth actually held at
//!   some point. Staleness is allowed (the display may lag); fabrication
//!   is not.
//! * **INV-BOUNDED-DELAY** (liveness, armed conditionally): whenever the
//!   active faults fit the deployment's `f`/`k` budget and have done so
//!   for a stability grace window, the maximum executed sequence across
//!   healthy replicas must keep advancing within the configured delay
//!   bound — Prime's bounded-delay guarantee under attack.
//! * **INV-RECONVERGENCE** (liveness): after a crash, recovery, or
//!   partition heals, the affected replicas must catch back up to where
//!   the healthy majority was at heal time within the reconvergence
//!   window. Catch-up latencies are recorded for reporting.
//!
//! Violations are journaled as [`obs::Event::InvariantViolation`], so a
//! tripped invariant changes the run digest — a chaos soak cannot quietly
//! pass while an invariant fired.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use itcrypto::sha256::Digest;
use prime::application::Application;
use simnet::time::{SimDuration, SimTime};
use spire::deploy::Deployment;

use crate::signal::{ChaosSignal, SignalFeed, SignalKind};

/// Checker tuning knobs and the fault budget it enforces.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Replica count.
    pub n: u32,
    /// Byzantine fault budget.
    pub f: u32,
    /// Concurrent-recovery budget.
    pub k: u32,
    /// Ordering quorum (progress needs this many connected replicas).
    pub quorum: u32,
    /// Maximum no-progress interval tolerated while armed. Sized to cover
    /// a leader failure: suspect timeout plus view change plus slack.
    pub delay_bound: SimDuration,
    /// How long a healed replica may take to catch back up.
    pub reconvergence_window: SimDuration,
    /// How long the budget must hold before the delay invariant arms.
    pub stability_grace: SimDuration,
    /// Negative-test mode: treat the budget as always satisfied so the
    /// delay invariant stays armed even under over-budget fault plans.
    pub assume_within_budget: bool,
}

impl CheckerConfig {
    /// Defaults derived from a Prime configuration (fast-timing
    /// deployments: 2 s suspect timeout dominates the delay bound).
    pub fn for_prime(cfg: &prime::types::Config) -> Self {
        CheckerConfig {
            n: cfg.n(),
            f: cfg.f,
            k: cfg.k,
            quorum: cfg.ordering_quorum(),
            delay_bound: SimDuration::from_secs(4),
            reconvergence_window: SimDuration::from_secs(10),
            stability_grace: SimDuration::from_secs(1),
            assume_within_budget: false,
        }
    }
}

/// Per-invariant tally.
#[derive(Clone, Copy, Debug)]
pub struct InvariantReport {
    /// Invariant name.
    pub name: &'static str,
    /// Journal tag (`InvariantViolation { invariant }` value).
    pub tag: u8,
    /// Times the invariant was evaluated.
    pub checks: u64,
    /// Times it fired.
    pub violations: u64,
}

const INV_NAMES: [&str; 4] = [
    "agreement",
    "hmi-ground-truth",
    "bounded-delay",
    "reconvergence",
];
const INV_AGREEMENT: usize = 0;
const INV_HMI_TRUTH: usize = 1;
const INV_BOUNDED_DELAY: usize = 2;
const INV_RECONVERGENCE: usize = 3;

struct PendingReconvergence {
    replica: u32,
    target: u64,
    healed_at: SimTime,
    deadline: SimTime,
}

/// A degraded membership epoch the management plane installed (site
/// failover): while active, the fault budget and the progress baseline
/// are judged against the epoch's members, not the static configuration.
struct EpochView {
    members: Vec<u32>,
    f: u32,
    k: u32,
    quorum: u32,
}

/// The continuous checker. The driver notifies it of every injection and
/// heal (so it can track the live fault budget) and calls
/// [`observe`](InvariantChecker::observe) after each step.
pub struct InvariantChecker {
    cfg: CheckerConfig,
    obs: obs::ObsHub,
    scenario: String,
    /// Replicas whose node is down (crash or recovery down-phase).
    down: BTreeSet<u32>,
    /// Replicas rejoining after a heal, still catching up (k budget).
    recovering: BTreeSet<u32>,
    /// Replicas currently flipped Byzantine (f budget).
    byz: BTreeSet<u32>,
    /// Replicas isolated by an active partition.
    partitioned: Vec<u32>,
    /// Active degraded membership epoch, if any (site failover).
    epoch: Option<EpochView>,
    /// Since when the fault budget has held continuously.
    stable_since: Option<SimTime>,
    last_max_exec: u64,
    last_progress_at: SimTime,
    /// Cross-time agreement record: executed seq -> app digest.
    agreement_seen: BTreeMap<u64, Digest>,
    /// Every breaker-position vector the ground-truth PLC ever held.
    truth_history: Vec<Vec<bool>>,
    pending: Vec<PendingReconvergence>,
    /// Observed catch-up latencies (microseconds) for healed replicas.
    pub reconvergence_us: Vec<u64>,
    checks: [u64; 4],
    violations: [u64; 4],
    /// Optional machine-readable signal feed (`chaos::signal`).
    signals: Option<SignalFeed>,
}

impl InvariantChecker {
    /// Builds a checker bound to a deployment: snapshots the initial PLC
    /// ground truth and shares the deployment's observability hub.
    pub fn new(cfg: CheckerConfig, d: &Deployment) -> Self {
        let scenario = d.cfg.proxies[0].scenario.tag();
        InvariantChecker {
            cfg,
            obs: d.obs.clone(),
            scenario,
            down: BTreeSet::new(),
            recovering: BTreeSet::new(),
            byz: BTreeSet::new(),
            partitioned: Vec::new(),
            epoch: None,
            stable_since: None,
            last_max_exec: 0,
            last_progress_at: d.now(),
            agreement_seen: BTreeMap::new(),
            truth_history: vec![d.plc(0).positions()],
            pending: Vec::new(),
            reconvergence_us: Vec::new(),
            checks: [0; 4],
            violations: [0; 4],
            signals: None,
        }
    }

    /// Attaches a signal feed: reconvergence outcomes and invariant
    /// violations are published as typed [`ChaosSignal`]s in addition to
    /// journaling. Observation-only — the digest is unaffected.
    pub fn attach_signals(&mut self, feed: SignalFeed) {
        self.signals = Some(feed);
    }

    // ---- driver notifications --------------------------------------

    /// The ground-truth PLC changed state (the driver flipped a breaker).
    pub fn note_ground_truth(&mut self, d: &Deployment) {
        let positions = d.plc(0).positions();
        if !self.truth_history.contains(&positions) {
            self.truth_history.push(positions);
        }
    }

    /// A replica's node went down (crash or recovery down-phase).
    pub fn replica_down(&mut self, replica: u32) {
        self.down.insert(replica);
        // If it was still catching up from an earlier heal, that episode
        // is void — a fresh reconvergence clock starts at the next heal.
        self.recovering.remove(&replica);
        self.pending.retain(|p| p.replica != replica);
    }

    /// A downed replica was restored and is rejoining.
    pub fn replica_rejoined(&mut self, replica: u32, d: &Deployment) {
        self.down.remove(&replica);
        self.recovering.insert(replica);
        self.push_pending(replica, d);
    }

    /// A replica flipped Byzantine.
    pub fn byz_started(&mut self, replica: u32) {
        self.byz.insert(replica);
    }

    /// A Byzantine replica was flipped back to correct.
    pub fn byz_healed(&mut self, replica: u32) {
        self.byz.remove(&replica);
    }

    /// A partition isolating `isolated` became active.
    pub fn partition_started(&mut self, isolated: &[u32]) {
        self.partitioned = isolated.to_vec();
    }

    /// The management plane installed a degraded membership epoch: the
    /// fault budget and the progress baseline now come from the epoch
    /// (`f`/`k`/`quorum` over `members`) instead of the static
    /// configuration. The delay invariant re-arms after the grace window.
    pub fn membership_changed(&mut self, members: Vec<u32>, f: u32, k: u32, quorum: u32) {
        self.epoch = Some(EpochView {
            members,
            f,
            k,
            quorum,
        });
        self.stable_since = None;
    }

    /// The full static membership is back in force (site heal + failback).
    pub fn membership_restored(&mut self) {
        self.epoch = None;
        self.stable_since = None;
    }

    /// The active partition healed; the formerly isolated replicas must
    /// now reconverge.
    pub fn partition_healed(&mut self, d: &Deployment) {
        for replica in std::mem::take(&mut self.partitioned) {
            if !self.down.contains(&replica) {
                self.push_pending(replica, d);
            }
        }
    }

    fn push_pending(&mut self, replica: u32, d: &Deployment) {
        let now = d.now();
        self.pending.push(PendingReconvergence {
            replica,
            target: self.max_healthy_exec(d),
            healed_at: now,
            deadline: now + self.cfg.reconvergence_window,
        });
    }

    // ---- the continuous check --------------------------------------

    /// Samples the deployment and evaluates all four invariants.
    pub fn observe(&mut self, d: &Deployment) {
        let now = d.now();
        self.check_agreement(d, now);
        self.check_hmi_truth(d, now);
        self.check_bounded_delay(d, now);
        self.check_reconvergence(d, now);
    }

    fn healthy(&self, replica: u32) -> bool {
        !self.down.contains(&replica) && !self.byz.contains(&replica)
    }

    /// Max executed seq over healthy replicas outside any active
    /// partition's isolated side (progress is defined by the majority).
    /// Under a degraded membership epoch only the epoch's members count —
    /// the severed replicas are not expected to make progress.
    fn max_healthy_exec(&self, d: &Deployment) -> u64 {
        (0..self.cfg.n)
            .filter(|r| {
                self.epoch
                    .as_ref()
                    .map(|e| e.members.contains(r))
                    .unwrap_or(true)
            })
            .filter(|r| self.healthy(*r) && !self.partitioned.contains(r))
            .map(|r| d.replica(r).replica.exec_seq())
            .max()
            .unwrap_or(0)
    }

    fn check_agreement(&mut self, d: &Deployment, now: SimTime) {
        self.checks[INV_AGREEMENT] += 1;
        let healthy: Vec<u32> = (0..self.cfg.n).filter(|r| self.healthy(*r)).collect();
        for r in healthy {
            let replica = &d.replica(r).replica;
            let exec = replica.exec_seq();
            if exec == 0 {
                continue;
            }
            let digest = replica.app().digest();
            match self.agreement_seen.entry(exec) {
                Entry::Vacant(v) => {
                    v.insert(digest);
                }
                Entry::Occupied(o) => {
                    if *o.get() != digest {
                        self.violation(INV_AGREEMENT, exec, now);
                    }
                }
            }
        }
    }

    fn check_hmi_truth(&mut self, d: &Deployment, now: SimTime) {
        for h in 0..d.cfg.hmis {
            if let Some(positions) = d.hmi(h).hmi.positions(&self.scenario) {
                self.checks[INV_HMI_TRUTH] += 1;
                if !self.truth_history.iter().any(|t| t == positions) {
                    self.violation(INV_HMI_TRUTH, h as u64, now);
                }
            }
        }
    }

    fn check_bounded_delay(&mut self, d: &Deployment, now: SimTime) {
        let within = self.cfg.assume_within_budget
            || match &self.epoch {
                None => {
                    (self.down.len() + self.byz.len()) as u32 <= self.cfg.f
                        && self.recovering.len() as u32 <= self.cfg.k
                        && (self.partitioned.is_empty()
                            || self.cfg.n - self.partitioned.len() as u32 >= self.cfg.quorum)
                }
                // Degraded epoch: only faults hitting epoch members count,
                // against the epoch's own (usually zero) budget.
                Some(e) => {
                    let hit = |set: &BTreeSet<u32>| {
                        e.members.iter().filter(|r| set.contains(r)).count() as u32
                    };
                    let partitioned_members = e
                        .members
                        .iter()
                        .filter(|r| self.partitioned.contains(r))
                        .count() as u32;
                    hit(&self.down) + hit(&self.byz) <= e.f
                        && hit(&self.recovering) <= e.k
                        && (partitioned_members == 0
                            || e.members.len() as u32 - partitioned_members >= e.quorum)
                }
            };
        if within {
            if self.stable_since.is_none() {
                self.stable_since = Some(now);
            }
        } else {
            self.stable_since = None;
        }
        let armed = self
            .stable_since
            .map(|t0| now.since(t0).as_micros() >= self.cfg.stability_grace.as_micros())
            .unwrap_or(false);
        let max_exec = self.max_healthy_exec(d);
        if max_exec > self.last_max_exec {
            self.last_max_exec = max_exec;
            self.last_progress_at = now;
        }
        if !armed {
            // The progress clock only runs while the budget holds.
            self.last_progress_at = now;
            return;
        }
        self.checks[INV_BOUNDED_DELAY] += 1;
        if now.since(self.last_progress_at).as_micros() > self.cfg.delay_bound.as_micros() {
            self.violation(INV_BOUNDED_DELAY, max_exec, now);
            // Reset so one stall reports once per bound, not per sample.
            self.last_progress_at = now;
        }
    }

    fn check_reconvergence(&mut self, d: &Deployment, now: SimTime) {
        let mut still = Vec::new();
        for p in self.pending.drain(..) {
            let exec = d.replica(p.replica).replica.exec_seq();
            if exec >= p.target {
                self.checks[INV_RECONVERGENCE] += 1;
                self.recovering.remove(&p.replica);
                let latency = now.since(p.healed_at).as_micros();
                self.reconvergence_us.push(latency);
                if let Some(feed) = &self.signals {
                    feed.publish(ChaosSignal {
                        kind: SignalKind::ReconvergenceDone,
                        code: 0,
                        target: p.replica,
                        value: latency,
                        at: now,
                    });
                }
            } else if now > p.deadline {
                self.checks[INV_RECONVERGENCE] += 1;
                self.recovering.remove(&p.replica);
                self.violations[INV_RECONVERGENCE] += 1;
                self.obs.journal(obs::Event::InvariantViolation {
                    invariant: INV_RECONVERGENCE as u8,
                    detail: p.replica as u64,
                });
                if let Some(feed) = &self.signals {
                    feed.publish(ChaosSignal {
                        kind: SignalKind::ReconvergenceTimeout,
                        code: INV_RECONVERGENCE as u8,
                        target: p.replica,
                        value: 0,
                        at: now,
                    });
                }
            } else {
                still.push(p);
            }
        }
        self.pending = still;
    }

    fn violation(&mut self, invariant: usize, detail: u64, now: SimTime) {
        self.violations[invariant] += 1;
        self.obs.journal(obs::Event::InvariantViolation {
            invariant: invariant as u8,
            detail,
        });
        if let Some(feed) = &self.signals {
            feed.publish(ChaosSignal {
                kind: SignalKind::Violation,
                code: invariant as u8,
                target: 0,
                value: detail,
                at: now,
            });
        }
    }

    // ---- reporting --------------------------------------------------

    /// Per-invariant verdicts.
    pub fn reports(&self) -> Vec<InvariantReport> {
        INV_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| InvariantReport {
                name,
                tag: i as u8,
                checks: self.checks[i],
                violations: self.violations[i],
            })
            .collect()
    }

    /// True when no invariant ever fired.
    pub fn all_green(&self) -> bool {
        self.violations.iter().all(|v| *v == 0)
    }

    /// Total violations across all invariants.
    pub fn total_violations(&self) -> u64 {
        self.violations.iter().sum()
    }

    /// Replicas the checker currently counts as Byzantine (test hook).
    pub fn byz_count(&self) -> usize {
        self.byz.len()
    }
}
