//! The SCADA update vocabulary carried in Prime update payloads.

use simnet::wire::{DecodeError, Reader, Wire, Writer};

/// A SCADA-level update, serialized into [`prime::Update::payload`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScadaUpdate {
    /// A field-device status report relayed by a PLC/RTU proxy.
    RtuStatus {
        /// Scenario tag (`jhu`, `plant`, `dist3`, `gen0`, ...).
        scenario: String,
        /// The proxy's poll sequence (newer polls supersede older).
        poll_seq: u64,
        /// Breaker positions (true = closed).
        positions: Vec<bool>,
        /// Breaker currents in amps.
        currents: Vec<u16>,
    },
    /// A supervisory command issued by an operator at an HMI.
    HmiCommand {
        /// Scenario tag.
        scenario: String,
        /// Breaker index.
        breaker: u16,
        /// Desired state (true = close).
        close: bool,
    },
    /// A request to re-baseline state from the field (ground-truth
    /// restart, §III-A) — ordered like any update so all replicas
    /// rebuild identically.
    FieldRebaseline {
        /// Scenario tag.
        scenario: String,
        /// Positions read directly from the device.
        positions: Vec<bool>,
    },
}

fn put_str(w: &mut Writer, s: &str) {
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut Reader<'_>) -> Result<String, DecodeError> {
    String::from_utf8(r.get_bytes()?).map_err(|_| DecodeError::new("utf8 string"))
}

fn put_bools(w: &mut Writer, v: &[bool]) {
    w.put_u32(v.len() as u32);
    for &b in v {
        w.put_bool(b);
    }
}

fn get_bools(r: &mut Reader<'_>) -> Result<Vec<bool>, DecodeError> {
    let n = r.get_u32()? as usize;
    if n > 4096 {
        return Err(DecodeError::new("bool vec length"));
    }
    (0..n).map(|_| r.get_bool()).collect()
}

impl Wire for ScadaUpdate {
    fn encode(&self, w: &mut Writer) {
        match self {
            ScadaUpdate::RtuStatus {
                scenario,
                poll_seq,
                positions,
                currents,
            } => {
                w.put_u8(0);
                put_str(w, scenario);
                w.put_u64(*poll_seq);
                put_bools(w, positions);
                w.put_u32(currents.len() as u32);
                for c in currents {
                    w.put_u16(*c);
                }
            }
            ScadaUpdate::HmiCommand {
                scenario,
                breaker,
                close,
            } => {
                w.put_u8(1);
                put_str(w, scenario);
                w.put_u16(*breaker);
                w.put_bool(*close);
            }
            ScadaUpdate::FieldRebaseline {
                scenario,
                positions,
            } => {
                w.put_u8(2);
                put_str(w, scenario);
                put_bools(w, positions);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.get_u8()? {
            0 => {
                let scenario = get_str(r)?;
                let poll_seq = r.get_u64()?;
                let positions = get_bools(r)?;
                let n = r.get_u32()? as usize;
                if n > 4096 {
                    return Err(DecodeError::new("currents length"));
                }
                let mut currents = Vec::with_capacity(n);
                for _ in 0..n {
                    currents.push(r.get_u16()?);
                }
                ScadaUpdate::RtuStatus {
                    scenario,
                    poll_seq,
                    positions,
                    currents,
                }
            }
            1 => ScadaUpdate::HmiCommand {
                scenario: get_str(r)?,
                breaker: r.get_u16()?,
                close: r.get_bool()?,
            },
            2 => ScadaUpdate::FieldRebaseline {
                scenario: get_str(r)?,
                positions: get_bools(r)?,
            },
            _ => return Err(DecodeError::new("scada update tag")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let updates = [
            ScadaUpdate::RtuStatus {
                scenario: "jhu".into(),
                poll_seq: 42,
                positions: vec![true, false, true],
                currents: vec![400, 0, 200],
            },
            ScadaUpdate::HmiCommand {
                scenario: "plant".into(),
                breaker: 1,
                close: false,
            },
            ScadaUpdate::FieldRebaseline {
                scenario: "gen2".into(),
                positions: vec![true; 3],
            },
        ];
        for u in updates {
            assert_eq!(ScadaUpdate::from_wire(&u.to_wire()).expect("roundtrip"), u);
        }
    }

    #[test]
    fn malformed_rejected() {
        assert!(ScadaUpdate::from_wire(&[]).is_err());
        assert!(ScadaUpdate::from_wire(&[7]).is_err());
        let good = ScadaUpdate::HmiCommand {
            scenario: "x".into(),
            breaker: 0,
            close: true,
        }
        .to_wire();
        assert!(ScadaUpdate::from_wire(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn non_utf8_scenario_rejected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_bytes(&[0xFF, 0xFE]);
        w.put_u16(0);
        w.put_bool(true);
        assert!(ScadaUpdate::from_wire(&w.finish()).is_err());
    }
}
