//! Prime protocol messages and their signed envelope.

use bytes::Bytes;
use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
use itcrypto::merkle::MerkleTree;
use itcrypto::schnorr::Signature;
use itcrypto::sha256::Digest;
use itcrypto::verify_cache::VerifyCache;
use simnet::wire::{DecodeError, Reader, Wire, Writer};

use crate::types::{ReplicaId, SignedUpdate};

/// Decode cap on batch membership (updates per batch / chunk count).
const BATCH_DECODE_CAP: usize = 4096;

/// Decode cap on Merkle inclusion-proof depth (covers 2^64 leaves).
const PROOF_PATH_CAP: usize = 64;

/// A signed PO-ARU vector as carried inside a pre-prepare matrix row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AruRow {
    /// The replica whose cumulative-ack vector this is.
    pub replica: ReplicaId,
    /// `vector[o]` = highest contiguous PO-Request sequence received from
    /// origin `o` (1-based; 0 = none).
    pub vector: Vec<u64>,
    /// That replica's signature over the vector.
    pub sig: Signature,
}

impl AruRow {
    /// The byte string the signature covers.
    pub fn signed_bytes(replica: ReplicaId, vector: &[u64]) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"po-aru")
            .put_u32(replica.0)
            .put_u32(vector.len() as u32);
        for v in vector {
            w.put_u64(*v);
        }
        w.finish().to_vec()
    }

    /// Verifies the row's signature.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            Principal::Replica(self.replica.0),
            &Self::signed_bytes(self.replica, &self.vector),
            &self.sig,
        )
    }

    /// [`AruRow::verify`] through a verdict cache. The hottest hit
    /// source: the same row recurs in every pre-prepare matrix that
    /// carries it and in repeated PO-ARU gossip.
    pub fn verify_cached(&self, registry: &KeyRegistry, cache: &mut VerifyCache) -> bool {
        let bytes = Self::signed_bytes(self.replica, &self.vector);
        let key = VerifyCache::key(
            b"prime.aru-row",
            self.replica.0 as u64,
            &bytes,
            &self.sig.to_bytes(),
        );
        cache.check(key, || {
            registry.verify(Principal::Replica(self.replica.0), &bytes, &self.sig)
        })
    }
}

impl Wire for AruRow {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.replica.0).put_u32(self.vector.len() as u32);
        for v in &self.vector {
            w.put_u64(*v);
        }
        w.put_raw(&self.sig.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let replica = ReplicaId(r.get_u32()?);
        let n = r.get_u32()? as usize;
        if n > 1024 {
            return Err(DecodeError::new("aru vector length"));
        }
        let mut vector = Vec::with_capacity(n);
        for _ in 0..n {
            vector.push(r.get_u64()?);
        }
        let sig: [u8; 16] = r
            .get_raw(16)?
            .try_into()
            .map_err(|_| DecodeError::new("sig"))?;
        Ok(AruRow {
            replica,
            vector,
            sig: Signature::from_bytes(&sig),
        })
    }
}

/// A Merkle-batched run of pre-order requests: `updates[i]` occupies the
/// origin's pre-order slot `first_po_seq + i`, and one origin signature
/// over the Merkle root of the (sequence, update) leaves authenticates
/// the whole run — the per-update signing and per-message NIC cost that
/// saturates E11 collapses to one signature and one broadcast per batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PoBatch {
    /// Disseminating replica.
    pub origin: ReplicaId,
    /// Composite pre-order sequence of `updates[0]`; members are
    /// consecutive within the origin's incarnation.
    pub first_po_seq: u64,
    /// The batched client updates, in sequence order.
    pub updates: Vec<SignedUpdate>,
    /// Origin's signature over [`PoBatch::signed_root_bytes`].
    pub root_sig: Signature,
}

impl PoBatch {
    /// The Merkle leaf for one member: the composite sequence bound to
    /// the signed update's wire bytes. Binding the sequence into the
    /// leaf means a proof for member `i` cannot be replayed to fill a
    /// different slot, even across the tree's odd-node promotions.
    pub fn leaf_bytes(po_seq: u64, update: &SignedUpdate) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(po_seq);
        update.encode(&mut w);
        w.finish().to_vec()
    }

    /// The Merkle tree over the batch's leaves.
    pub fn tree(&self) -> MerkleTree {
        MerkleTree::from_leaves(
            self.updates
                .iter()
                .enumerate()
                .map(|(i, u)| Self::leaf_bytes(self.first_po_seq + i as u64, u)),
        )
    }

    /// The batch's Merkle root, recomputed from its members.
    pub fn root(&self) -> Digest {
        self.tree().root()
    }

    /// The byte string `root_sig` covers: a domain tag, the batch
    /// coordinates, and the Merkle root.
    pub fn signed_root_bytes(
        origin: ReplicaId,
        first_po_seq: u64,
        count: u32,
        root: Digest,
    ) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"po-batch")
            .put_u32(origin.0)
            .put_u64(first_po_seq)
            .put_u32(count)
            .put_raw(root.as_bytes());
        w.finish().to_vec()
    }

    /// Builds and signs a batch as `origin`.
    pub fn sign(
        origin: ReplicaId,
        first_po_seq: u64,
        updates: Vec<SignedUpdate>,
        key: &mut KeyPair,
    ) -> Self {
        let mut batch = PoBatch {
            origin,
            first_po_seq,
            updates,
            root_sig: Signature::from_bytes(&[0; 16]),
        };
        let bytes = Self::signed_root_bytes(
            origin,
            first_po_seq,
            batch.updates.len() as u32,
            batch.root(),
        );
        batch.root_sig = key.sign(&bytes);
        batch
    }

    /// Verifies an origin signature over batch coordinates and a Merkle
    /// root through the verdict cache. This is the shared key path for
    /// both whole-batch verification (root recomputed from every member)
    /// and single-member verification (root folded from an inclusion
    /// proof): the cache keys on the *root*, not on per-update digests,
    /// so one real verification covers the batch and every later member
    /// check of it. A corrupted member or path changes the computed root,
    /// which changes the key — the cached verdict is always identical to
    /// the uncached one.
    pub fn verify_root_cached(
        registry: &KeyRegistry,
        cache: &mut VerifyCache,
        origin: ReplicaId,
        first_po_seq: u64,
        count: u32,
        root: Digest,
        sig: &Signature,
    ) -> bool {
        let bytes = Self::signed_root_bytes(origin, first_po_seq, count, root);
        let key = VerifyCache::key(b"prime.po-batch", origin.0 as u64, &bytes, &sig.to_bytes());
        cache.check(key, || {
            registry.verify(Principal::Replica(origin.0), &bytes, sig)
        })
    }

    /// Verifies this batch's root signature (recomputing the root from
    /// the members) through the verdict cache.
    pub fn verify_cached(&self, registry: &KeyRegistry, cache: &mut VerifyCache) -> bool {
        if self.updates.is_empty() {
            return false;
        }
        Self::verify_root_cached(
            registry,
            cache,
            self.origin,
            self.first_po_seq,
            self.updates.len() as u32,
            self.root(),
            &self.root_sig,
        )
    }
}

impl Wire for PoBatch {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.origin.0)
            .put_u64(self.first_po_seq)
            .put_u32(self.updates.len() as u32);
        for u in &self.updates {
            u.encode(w);
        }
        w.put_raw(&self.root_sig.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let origin = ReplicaId(r.get_u32()?);
        let first_po_seq = r.get_u64()?;
        let n = r.get_u32()? as usize;
        if n == 0 || n > BATCH_DECODE_CAP {
            return Err(DecodeError::new("batch size"));
        }
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            updates.push(SignedUpdate::decode(r)?);
        }
        let sig: [u8; 16] = r
            .get_raw(16)?
            .try_into()
            .map_err(|_| DecodeError::new("sig"))?;
        Ok(PoBatch {
            origin,
            first_po_seq,
            updates,
            root_sig: Signature::from_bytes(&sig),
        })
    }
}

/// The Prime protocol message set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PrimeMsg {
    /// Pre-ordering: replica `origin` disseminates a client update under
    /// its local sequence `po_seq` (1-based).
    PoRequest {
        /// Disseminating replica.
        origin: ReplicaId,
        /// Its local sequence for this update.
        po_seq: u64,
        /// The client update.
        update: SignedUpdate,
    },
    /// Pre-ordering: signed cumulative-ack vector.
    PoAru {
        /// The signed row (reused as matrix row in pre-prepares).
        row: AruRow,
    },
    /// Ordering: the leader's proposal for global sequence `seq`.
    PrePrepare {
        /// View this proposal belongs to.
        view: u64,
        /// Global ordering sequence (1-based, contiguous per view era).
        seq: u64,
        /// Matrix of signed PO-ARU rows.
        matrix: Vec<AruRow>,
    },
    /// Ordering: endorsement of a pre-prepare.
    Prepare {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Digest of the pre-prepare matrix.
        digest: Digest,
    },
    /// Ordering: commit vote after a prepare certificate.
    Commit {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Digest of the pre-prepare matrix.
        digest: Digest,
    },
    /// Reconciliation: ask for a missing covered PO-Request.
    PoFetch {
        /// Origin replica of the wanted request.
        origin: ReplicaId,
        /// Its sequence.
        po_seq: u64,
    },
    /// Reconciliation: supply a PO-Request. Carries the *original signed
    /// envelope* from the origin so a relaying replica cannot forge the
    /// (origin, sequence) → update binding.
    PoData {
        /// Wire bytes of the origin's original `SignedMsg(PoRequest)`.
        original: Vec<u8>,
    },
    /// Leader suspicion for the given view (TAT bound exceeded).
    SuspectLeader {
        /// The suspected view.
        view: u64,
    },
    /// View change vote. Carries the replica's prepared-but-uncommitted
    /// proposal (if any) so the new leader can re-propose the *same*
    /// matrix, preserving per-sequence agreement across views.
    ViewChange {
        /// The view being moved to.
        new_view: u64,
        /// Highest global sequence this replica has committed.
        max_committed: u64,
        /// Sequence of the prepared-but-uncommitted proposal (0 = none).
        prepared_seq: u64,
        /// View in which that proposal was prepared.
        prepared_view: u64,
        /// The prepared matrix (empty when `prepared_seq` is 0).
        prepared_matrix: Vec<AruRow>,
    },
    /// New leader's installation message.
    NewView {
        /// The installed view.
        view: u64,
        /// First sequence the new leader will propose.
        start_seq: u64,
    },
    /// Periodic application checkpoint.
    Checkpoint {
        /// Number of updates executed.
        exec_seq: u64,
        /// Application state digest at that point.
        app_digest: Digest,
    },
    /// Catch-up: ask peers for current state (after recovery/partition).
    CatchupRequest {
        /// The requester's executed count.
        have_exec_seq: u64,
    },
    /// Catch-up: a peer's state offer. Carries the *application-level*
    /// snapshot — the §III-A signaling between replication and SCADA app.
    CatchupReply {
        /// Executed update count at the snapshot.
        exec_seq: u64,
        /// Application digest at the snapshot.
        app_digest: Digest,
        /// Serialized application snapshot.
        snapshot: Vec<u8>,
        /// Ordering sequence to resume from.
        next_order_seq: u64,
        /// Cumulative execution-coverage vector at the snapshot.
        exec_cover: Vec<u64>,
        /// View at the snapshot.
        view: u64,
    },
    /// Companion to [`PrimeMsg::CatchupReply`], sent immediately before
    /// it when [`crate::types::Config::transfer_dedup`] is armed: the
    /// sender's client duplicate-suppression table at the snapshot, one
    /// `(client, contiguous_through, extras)` entry per client — the
    /// executed client-seq set is `1..=contiguous_through` plus the
    /// sparse `extras`. Without this, a recovered replica executes
    /// duplicate orderings its peers suppressed and its execution
    /// numbering (and app digest) silently forks from the quorum's. A
    /// separate message (rather than a `CatchupReply` field) keeps the
    /// legacy catch-up wire format byte-identical when the flag is off.
    CatchupDedup {
        /// Executed update count of the reply this table accompanies.
        exec_seq: u64,
        /// The dedup table.
        dedup: Vec<(u32, u64, Vec<u64>)>,
    },
    /// Pre-ordering: a Merkle-batched run of client updates occupying
    /// consecutive pre-order slots of `batch.origin`. Only sent when
    /// [`crate::types::Config::batch_max`] is armed; the legacy wire
    /// format (per-update [`PrimeMsg::PoRequest`]) is untouched when off.
    PoRequestBatch {
        /// The batch.
        batch: PoBatch,
    },
    /// Reconciliation: a single member of a disseminated batch, served in
    /// answer to [`PrimeMsg::PoFetch`] with a Merkle inclusion proof.
    /// The receiver folds `(first_po_seq + index, update)` up `path`,
    /// and checks `root_sig` over the folded root: the origin's batch
    /// signature authenticates the member without shipping the batch.
    PoBatchMember {
        /// The batch's origin.
        origin: ReplicaId,
        /// Composite sequence of the batch's first member.
        first_po_seq: u64,
        /// Batch size (binds the signed root coordinates).
        count: u32,
        /// This member's index within the batch.
        index: u32,
        /// The member update.
        update: SignedUpdate,
        /// Inclusion-proof path, `(sibling, sibling_is_left)` bottom-up.
        path: Vec<(Digest, bool)>,
        /// The origin's signature over the batch root coordinates.
        root_sig: Signature,
    },
    /// Windowed view-change vote, sent instead of [`PrimeMsg::ViewChange`]
    /// when [`crate::types::Config::pipeline`] exceeds 1: with several
    /// sequences in flight, a replica can hold multiple prepared-but-
    /// uncommitted certificates, and every one above the committed
    /// watermark must survive into the new view.
    ViewChangeWindow {
        /// The view being moved to.
        new_view: u64,
        /// Highest global sequence this replica has committed.
        max_committed: u64,
        /// `(seq, prepared_view, matrix)` per surviving certificate,
        /// ascending by sequence.
        certs: Vec<(u64, u64, Vec<AruRow>)>,
    },
    /// Catch-up: one chunk of a large application snapshot, sent ahead of
    /// a [`PrimeMsg::CatchupReply`] whose `snapshot` field is then empty
    /// (see [`crate::types::Config::transfer_chunk`]). The receiver
    /// reassembles chunks per `(sender, exec_seq)` and splices the
    /// snapshot back into the reply before the usual f+1 matching rule.
    CatchupChunk {
        /// Executed update count of the snapshot being chunked.
        exec_seq: u64,
        /// This chunk's index.
        index: u32,
        /// Total chunks in the snapshot.
        count: u32,
        /// The chunk bytes.
        data: Vec<u8>,
    },
}

impl PrimeMsg {
    /// The profiler phase stack this message belongs to, in folded-stack
    /// form (`subsystem;phase;kind`). The middle segment is the paper's
    /// protocol-phase taxonomy — pre-ordering, ordering, and the
    /// checkpoint/catch-up machinery — so `obs::prof` attribution tables
    /// aggregate cleanly per phase.
    pub fn prof_stack(&self) -> &'static str {
        match self {
            PrimeMsg::PoRequest { .. } => "prime;preorder;po_request",
            PrimeMsg::PoAru { .. } => "prime;preorder;po_aru",
            PrimeMsg::PoFetch { .. } => "prime;preorder;po_fetch",
            PrimeMsg::PoData { .. } => "prime;preorder;po_data",
            PrimeMsg::PrePrepare { .. } => "prime;order;pre_prepare",
            PrimeMsg::Prepare { .. } => "prime;order;prepare",
            PrimeMsg::Commit { .. } => "prime;order;commit",
            PrimeMsg::SuspectLeader { .. } => "prime;order;suspect",
            PrimeMsg::ViewChange { .. } => "prime;order;view_change",
            PrimeMsg::NewView { .. } => "prime;order;new_view",
            PrimeMsg::Checkpoint { .. } => "prime;catchup;checkpoint",
            PrimeMsg::CatchupRequest { .. } => "prime;catchup;request",
            PrimeMsg::CatchupReply { .. } => "prime;catchup;reply",
            PrimeMsg::CatchupDedup { .. } => "prime;catchup;dedup",
            PrimeMsg::PoRequestBatch { .. } => "prime;preorder;batch_request",
            PrimeMsg::PoBatchMember { .. } => "prime;preorder;batch_member",
            PrimeMsg::ViewChangeWindow { .. } => "prime;order;view_change",
            PrimeMsg::CatchupChunk { .. } => "prime;catchup;chunk",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            PrimeMsg::PoRequest { .. } => 0,
            PrimeMsg::PoAru { .. } => 1,
            PrimeMsg::PrePrepare { .. } => 2,
            PrimeMsg::Prepare { .. } => 3,
            PrimeMsg::Commit { .. } => 4,
            PrimeMsg::PoFetch { .. } => 5,
            PrimeMsg::PoData { .. } => 6,
            PrimeMsg::SuspectLeader { .. } => 7,
            PrimeMsg::ViewChange { .. } => 8,
            PrimeMsg::NewView { .. } => 9,
            PrimeMsg::Checkpoint { .. } => 10,
            PrimeMsg::CatchupRequest { .. } => 11,
            PrimeMsg::CatchupReply { .. } => 12,
            PrimeMsg::CatchupDedup { .. } => 13,
            PrimeMsg::PoRequestBatch { .. } => 14,
            PrimeMsg::PoBatchMember { .. } => 15,
            PrimeMsg::ViewChangeWindow { .. } => 16,
            PrimeMsg::CatchupChunk { .. } => 17,
        }
    }
}

fn put_u64_vec(w: &mut Writer, v: &[u64]) {
    w.put_u32(v.len() as u32);
    for x in v {
        w.put_u64(*x);
    }
}

fn get_u64_vec(r: &mut Reader<'_>) -> Result<Vec<u64>, DecodeError> {
    let n = r.get_u32()? as usize;
    if n > 4096 {
        return Err(DecodeError::new("u64 vec length"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

impl Wire for PrimeMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            PrimeMsg::PoRequest {
                origin,
                po_seq,
                update,
            } => {
                w.put_u32(origin.0).put_u64(*po_seq);
                update.encode(w);
            }
            PrimeMsg::PoAru { row } => row.encode(w),
            PrimeMsg::PrePrepare { view, seq, matrix } => {
                w.put_u64(*view).put_u64(*seq).put_u32(matrix.len() as u32);
                for row in matrix {
                    row.encode(w);
                }
            }
            PrimeMsg::Prepare { view, seq, digest } | PrimeMsg::Commit { view, seq, digest } => {
                w.put_u64(*view).put_u64(*seq).put_raw(digest.as_bytes());
            }
            PrimeMsg::PoFetch { origin, po_seq } => {
                w.put_u32(origin.0).put_u64(*po_seq);
            }
            PrimeMsg::PoData { original } => {
                w.put_bytes(original);
            }
            PrimeMsg::SuspectLeader { view } => {
                w.put_u64(*view);
            }
            PrimeMsg::ViewChange {
                new_view,
                max_committed,
                prepared_seq,
                prepared_view,
                prepared_matrix,
            } => {
                w.put_u64(*new_view)
                    .put_u64(*max_committed)
                    .put_u64(*prepared_seq)
                    .put_u64(*prepared_view);
                w.put_u32(prepared_matrix.len() as u32);
                for row in prepared_matrix {
                    row.encode(w);
                }
            }
            PrimeMsg::NewView { view, start_seq } => {
                w.put_u64(*view).put_u64(*start_seq);
            }
            PrimeMsg::Checkpoint {
                exec_seq,
                app_digest,
            } => {
                w.put_u64(*exec_seq).put_raw(app_digest.as_bytes());
            }
            PrimeMsg::CatchupRequest { have_exec_seq } => {
                w.put_u64(*have_exec_seq);
            }
            PrimeMsg::CatchupReply {
                exec_seq,
                app_digest,
                snapshot,
                next_order_seq,
                exec_cover,
                view,
            } => {
                w.put_u64(*exec_seq)
                    .put_raw(app_digest.as_bytes())
                    .put_bytes(snapshot);
                w.put_u64(*next_order_seq);
                put_u64_vec(w, exec_cover);
                w.put_u64(*view);
            }
            PrimeMsg::CatchupDedup { exec_seq, dedup } => {
                w.put_u64(*exec_seq);
                w.put_u32(dedup.len() as u32);
                for (client, through, extras) in dedup {
                    w.put_u32(*client);
                    w.put_u64(*through);
                    put_u64_vec(w, extras);
                }
            }
            PrimeMsg::PoRequestBatch { batch } => batch.encode(w),
            PrimeMsg::PoBatchMember {
                origin,
                first_po_seq,
                count,
                index,
                update,
                path,
                root_sig,
            } => {
                w.put_u32(origin.0)
                    .put_u64(*first_po_seq)
                    .put_u32(*count)
                    .put_u32(*index);
                update.encode(w);
                w.put_u32(path.len() as u32);
                for (sibling, is_left) in path {
                    w.put_raw(sibling.as_bytes()).put_u8(u8::from(*is_left));
                }
                w.put_raw(&root_sig.to_bytes());
            }
            PrimeMsg::ViewChangeWindow {
                new_view,
                max_committed,
                certs,
            } => {
                w.put_u64(*new_view)
                    .put_u64(*max_committed)
                    .put_u32(certs.len() as u32);
                for (seq, prepared_view, matrix) in certs {
                    w.put_u64(*seq)
                        .put_u64(*prepared_view)
                        .put_u32(matrix.len() as u32);
                    for row in matrix {
                        row.encode(w);
                    }
                }
            }
            PrimeMsg::CatchupChunk {
                exec_seq,
                index,
                count,
                data,
            } => {
                w.put_u64(*exec_seq).put_u32(*index).put_u32(*count);
                w.put_bytes(data);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.get_u8()?;
        let digest = |r: &mut Reader<'_>| -> Result<Digest, DecodeError> {
            let raw: [u8; 32] = r
                .get_raw(32)?
                .try_into()
                .map_err(|_| DecodeError::new("digest"))?;
            Ok(Digest(raw))
        };
        Ok(match tag {
            0 => PrimeMsg::PoRequest {
                origin: ReplicaId(r.get_u32()?),
                po_seq: r.get_u64()?,
                update: SignedUpdate::decode(r)?,
            },
            1 => PrimeMsg::PoAru {
                row: AruRow::decode(r)?,
            },
            2 => {
                let view = r.get_u64()?;
                let seq = r.get_u64()?;
                let n = r.get_u32()? as usize;
                if n > 1024 {
                    return Err(DecodeError::new("matrix size"));
                }
                let mut matrix = Vec::with_capacity(n);
                for _ in 0..n {
                    matrix.push(AruRow::decode(r)?);
                }
                PrimeMsg::PrePrepare { view, seq, matrix }
            }
            3 => PrimeMsg::Prepare {
                view: r.get_u64()?,
                seq: r.get_u64()?,
                digest: digest(r)?,
            },
            4 => PrimeMsg::Commit {
                view: r.get_u64()?,
                seq: r.get_u64()?,
                digest: digest(r)?,
            },
            5 => PrimeMsg::PoFetch {
                origin: ReplicaId(r.get_u32()?),
                po_seq: r.get_u64()?,
            },
            6 => PrimeMsg::PoData {
                original: r.get_bytes()?,
            },
            7 => PrimeMsg::SuspectLeader { view: r.get_u64()? },
            8 => {
                let new_view = r.get_u64()?;
                let max_committed = r.get_u64()?;
                let prepared_seq = r.get_u64()?;
                let prepared_view = r.get_u64()?;
                let n = r.get_u32()? as usize;
                if n > 1024 {
                    return Err(DecodeError::new("vc matrix size"));
                }
                let mut prepared_matrix = Vec::with_capacity(n);
                for _ in 0..n {
                    prepared_matrix.push(AruRow::decode(r)?);
                }
                PrimeMsg::ViewChange {
                    new_view,
                    max_committed,
                    prepared_seq,
                    prepared_view,
                    prepared_matrix,
                }
            }
            9 => PrimeMsg::NewView {
                view: r.get_u64()?,
                start_seq: r.get_u64()?,
            },
            10 => PrimeMsg::Checkpoint {
                exec_seq: r.get_u64()?,
                app_digest: digest(r)?,
            },
            11 => PrimeMsg::CatchupRequest {
                have_exec_seq: r.get_u64()?,
            },
            12 => PrimeMsg::CatchupReply {
                exec_seq: r.get_u64()?,
                app_digest: digest(r)?,
                snapshot: r.get_bytes()?,
                next_order_seq: r.get_u64()?,
                exec_cover: get_u64_vec(r)?,
                view: r.get_u64()?,
            },
            13 => PrimeMsg::CatchupDedup {
                exec_seq: r.get_u64()?,
                dedup: {
                    let n = r.get_u32()? as usize;
                    if n > 4096 {
                        return Err(DecodeError::new("dedup table length"));
                    }
                    let mut table = Vec::with_capacity(n);
                    for _ in 0..n {
                        let client = r.get_u32()?;
                        let through = r.get_u64()?;
                        table.push((client, through, get_u64_vec(r)?));
                    }
                    table
                },
            },
            14 => PrimeMsg::PoRequestBatch {
                batch: PoBatch::decode(r)?,
            },
            15 => {
                let origin = ReplicaId(r.get_u32()?);
                let first_po_seq = r.get_u64()?;
                let count = r.get_u32()?;
                let index = r.get_u32()?;
                if count as usize > BATCH_DECODE_CAP || index >= count {
                    return Err(DecodeError::new("batch member coordinates"));
                }
                let update = SignedUpdate::decode(r)?;
                let n = r.get_u32()? as usize;
                if n > PROOF_PATH_CAP {
                    return Err(DecodeError::new("proof path length"));
                }
                let mut path = Vec::with_capacity(n);
                for _ in 0..n {
                    let sibling = digest(r)?;
                    let is_left = r.get_u8()? != 0;
                    path.push((sibling, is_left));
                }
                let sig: [u8; 16] = r
                    .get_raw(16)?
                    .try_into()
                    .map_err(|_| DecodeError::new("sig"))?;
                PrimeMsg::PoBatchMember {
                    origin,
                    first_po_seq,
                    count,
                    index,
                    update,
                    path,
                    root_sig: Signature::from_bytes(&sig),
                }
            }
            16 => {
                let new_view = r.get_u64()?;
                let max_committed = r.get_u64()?;
                let n = r.get_u32()? as usize;
                if n > 1024 {
                    return Err(DecodeError::new("vc window size"));
                }
                let mut certs = Vec::with_capacity(n);
                for _ in 0..n {
                    let seq = r.get_u64()?;
                    let prepared_view = r.get_u64()?;
                    let m = r.get_u32()? as usize;
                    if m > 1024 {
                        return Err(DecodeError::new("vc matrix size"));
                    }
                    let mut matrix = Vec::with_capacity(m);
                    for _ in 0..m {
                        matrix.push(AruRow::decode(r)?);
                    }
                    certs.push((seq, prepared_view, matrix));
                }
                PrimeMsg::ViewChangeWindow {
                    new_view,
                    max_committed,
                    certs,
                }
            }
            17 => PrimeMsg::CatchupChunk {
                exec_seq: r.get_u64()?,
                index: r.get_u32()?,
                count: r.get_u32()?,
                data: r.get_bytes()?,
            },
            _ => return Err(DecodeError::new("prime message tag")),
        })
    }
}

/// A Prime message signed by its sending replica.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedMsg {
    /// The sender.
    pub from: ReplicaId,
    /// The message.
    pub msg: PrimeMsg,
    /// Signature over `from || msg` bytes.
    pub sig: Signature,
}

impl SignedMsg {
    fn signed_bytes(from: ReplicaId, msg: &PrimeMsg) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"prime").put_u32(from.0);
        msg.encode(&mut w);
        w.finish().to_vec()
    }

    /// Signs a message as `from`.
    pub fn sign(from: ReplicaId, msg: PrimeMsg, key: &mut KeyPair) -> Self {
        let sig = key.sign(&Self::signed_bytes(from, &msg));
        SignedMsg { from, msg, sig }
    }

    /// Verifies the envelope against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            Principal::Replica(self.from.0),
            &Self::signed_bytes(self.from, &self.msg),
            &self.sig,
        )
    }

    /// [`SignedMsg::verify`] through a verdict cache. The key commits to
    /// the full signed byte string and signature, so the cached verdict
    /// is identical to the uncached one for any input, tampered or not.
    pub fn verify_cached(&self, registry: &KeyRegistry, cache: &mut VerifyCache) -> bool {
        let bytes = Self::signed_bytes(self.from, &self.msg);
        let key = VerifyCache::key(
            b"prime.msg",
            self.from.0 as u64,
            &bytes,
            &self.sig.to_bytes(),
        );
        cache.check(key, || {
            registry.verify(Principal::Replica(self.from.0), &bytes, &self.sig)
        })
    }
}

/// A signed message bundled with its wire bytes, produced in one pass at
/// signing time ("serialize-once"). The wire encoding is recovered from
/// the signing serialization instead of encoding the message a second
/// time, and the [`Bytes`] payload is reference-counted, so broadcasting
/// to `n - 1` peers clones a pointer, not the message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The signed message, for local dispatch without re-parsing.
    pub msg: SignedMsg,
    /// Exactly the bytes `msg.to_wire()` would produce, ready to send.
    pub wire: Bytes,
}

impl Envelope {
    /// Signs `msg` as `from`, deriving the wire bytes from the signing
    /// serialization: the wire form is `from || msg || sig`, i.e. the
    /// signed bytes minus the 5-byte domain tag, plus the signature.
    pub fn sign(from: ReplicaId, msg: PrimeMsg, key: &mut KeyPair) -> Self {
        let signed = SignedMsg::signed_bytes(from, &msg);
        let sig = key.sign(&signed);
        let mut wire = Vec::with_capacity(signed.len() - 5 + 16);
        wire.extend_from_slice(&signed[5..]);
        wire.extend_from_slice(&sig.to_bytes());
        Envelope {
            msg: SignedMsg { from, msg, sig },
            wire: Bytes::from(wire),
        }
    }
}

impl Wire for SignedMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.from.0);
        self.msg.encode(w);
        w.put_raw(&self.sig.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let from = ReplicaId(r.get_u32()?);
        let msg = PrimeMsg::decode(r)?;
        let sig: [u8; 16] = r
            .get_raw(16)?
            .try_into()
            .map_err(|_| DecodeError::new("sig"))?;
        Ok(SignedMsg {
            from,
            msg,
            sig: Signature::from_bytes(&sig),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Update;
    use bytes::Bytes;
    use itcrypto::keys::KeyPair;

    fn sample_update() -> SignedUpdate {
        let mut kp = KeyPair::generate(1);
        let update = Update::new(1, 1, Bytes::from_static(b"u"));
        let sig = kp.sign(&update.to_wire());
        SignedUpdate { update, sig }
    }

    fn roundtrip(msg: PrimeMsg) {
        let bytes = msg.to_wire();
        assert_eq!(PrimeMsg::from_wire(&bytes).expect("roundtrip"), msg);
    }

    #[test]
    fn envelope_wire_matches_encode() {
        // The serialize-once wire bytes must be exactly what a separate
        // `to_wire` pass would produce, for every message shape.
        let mut kp = KeyPair::generate(9);
        let vector = vec![1, 2, 3];
        let sig = kp.sign(&AruRow::signed_bytes(ReplicaId(0), &vector));
        let row = AruRow {
            replica: ReplicaId(0),
            vector,
            sig,
        };
        let msgs = [
            PrimeMsg::PoRequest {
                origin: ReplicaId(1),
                po_seq: 5,
                update: sample_update(),
            },
            PrimeMsg::PrePrepare {
                view: 1,
                seq: 9,
                matrix: vec![row.clone(), row],
            },
            PrimeMsg::Prepare {
                view: 1,
                seq: 9,
                digest: Digest([7; 32]),
            },
            PrimeMsg::SuspectLeader { view: 4 },
        ];
        for msg in msgs {
            let env = Envelope::sign(ReplicaId(1), msg, &mut kp);
            assert_eq!(env.wire, env.msg.to_wire());
            assert_eq!(SignedMsg::from_wire(&env.wire).expect("decodes"), env.msg);
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        let mut kp = KeyPair::generate(2);
        let vector = vec![3, 0, 7];
        let sig = kp.sign(&AruRow::signed_bytes(ReplicaId(2), &vector));
        let row = AruRow {
            replica: ReplicaId(2),
            vector,
            sig,
        };
        roundtrip(PrimeMsg::PoRequest {
            origin: ReplicaId(1),
            po_seq: 5,
            update: sample_update(),
        });
        roundtrip(PrimeMsg::PoAru { row: row.clone() });
        roundtrip(PrimeMsg::PrePrepare {
            view: 1,
            seq: 9,
            matrix: vec![row.clone(), row.clone()],
        });
        roundtrip(PrimeMsg::Prepare {
            view: 1,
            seq: 9,
            digest: Digest([7; 32]),
        });
        roundtrip(PrimeMsg::Commit {
            view: 1,
            seq: 9,
            digest: Digest([8; 32]),
        });
        roundtrip(PrimeMsg::PoFetch {
            origin: ReplicaId(0),
            po_seq: 3,
        });
        roundtrip(PrimeMsg::PoData {
            original: vec![1, 2, 3, 4],
        });
        roundtrip(PrimeMsg::SuspectLeader { view: 4 });
        roundtrip(PrimeMsg::ViewChange {
            new_view: 5,
            max_committed: 10,
            prepared_seq: 11,
            prepared_view: 4,
            prepared_matrix: vec![row.clone()],
        });
        roundtrip(PrimeMsg::NewView {
            view: 5,
            start_seq: 12,
        });
        roundtrip(PrimeMsg::Checkpoint {
            exec_seq: 100,
            app_digest: Digest([9; 32]),
        });
        roundtrip(PrimeMsg::CatchupRequest { have_exec_seq: 4 });
        roundtrip(PrimeMsg::CatchupReply {
            exec_seq: 100,
            app_digest: Digest([1; 32]),
            snapshot: vec![1, 2, 3],
            next_order_seq: 50,
            exec_cover: vec![9, 9, 9, 9],
            view: 2,
        });
        roundtrip(PrimeMsg::CatchupDedup {
            exec_seq: 100,
            dedup: vec![(7, 40, vec![42, 44]), (9, 0, vec![])],
        });
        roundtrip(PrimeMsg::CatchupDedup {
            exec_seq: 3,
            dedup: Vec::new(),
        });
        let batch = PoBatch::sign(
            ReplicaId(2),
            9,
            vec![sample_update(), sample_update()],
            &mut kp,
        );
        roundtrip(PrimeMsg::PoRequestBatch {
            batch: batch.clone(),
        });
        let proof = batch.tree().prove(1).expect("in range");
        roundtrip(PrimeMsg::PoBatchMember {
            origin: ReplicaId(2),
            first_po_seq: 9,
            count: 2,
            index: 1,
            update: sample_update(),
            path: proof.path,
            root_sig: batch.root_sig,
        });
        roundtrip(PrimeMsg::ViewChangeWindow {
            new_view: 6,
            max_committed: 10,
            certs: vec![(11, 4, vec![row.clone()]), (12, 5, vec![row.clone()])],
        });
        roundtrip(PrimeMsg::ViewChangeWindow {
            new_view: 6,
            max_committed: 10,
            certs: Vec::new(),
        });
        roundtrip(PrimeMsg::CatchupChunk {
            exec_seq: 100,
            index: 1,
            count: 3,
            data: vec![9, 8, 7],
        });
    }

    #[test]
    fn batch_root_signature_verifies_and_detects_member_tamper() {
        let mut kp = KeyPair::generate(5);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Replica(1), kp.public_key());
        let mut cache = VerifyCache::new(64);
        let batch = PoBatch::sign(
            ReplicaId(1),
            4,
            vec![sample_update(), sample_update(), sample_update()],
            &mut kp,
        );
        assert!(batch.verify_cached(&reg, &mut cache));
        // Second verification is a cache hit on the root key.
        let hits = cache.hits;
        assert!(batch.verify_cached(&reg, &mut cache));
        assert!(cache.hits > hits);
        // A tampered member changes the recomputed root: different cache
        // key, fresh verification, rejection — cached == uncached.
        let mut bad = batch.clone();
        bad.updates[1].update.client_seq += 1;
        assert!(!bad.verify_cached(&reg, &mut cache));
        assert!(!bad.verify_cached(&reg, &mut cache));
        // An empty batch is rejected outright.
        let mut empty = batch.clone();
        empty.updates.clear();
        assert!(!empty.verify_cached(&reg, &mut cache));
    }

    #[test]
    fn batch_member_proof_folds_to_signed_root() {
        let mut kp = KeyPair::generate(6);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Replica(0), kp.public_key());
        let mut cache = VerifyCache::new(64);
        let updates = vec![sample_update(), sample_update(), sample_update()];
        let batch = PoBatch::sign(ReplicaId(0), 7, updates.clone(), &mut kp);
        let tree = batch.tree();
        for (i, u) in updates.iter().enumerate() {
            let proof = tree.prove(i).expect("in range");
            let folded = proof.fold_root(&PoBatch::leaf_bytes(7 + i as u64, u));
            assert!(PoBatch::verify_root_cached(
                &reg,
                &mut cache,
                ReplicaId(0),
                7,
                updates.len() as u32,
                folded,
                &batch.root_sig,
            ));
        }
        // Folding with the wrong sequence (a replayed index) yields a
        // different root, so the signature check fails.
        let proof = tree.prove(0).expect("in range");
        let folded = proof.fold_root(&PoBatch::leaf_bytes(8, &updates[0]));
        assert!(!PoBatch::verify_root_cached(
            &reg,
            &mut cache,
            ReplicaId(0),
            7,
            updates.len() as u32,
            folded,
            &batch.root_sig,
        ));
    }

    #[test]
    fn signed_envelope_verifies_and_detects_tamper() {
        let mut kp = KeyPair::generate(3);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Replica(3), kp.public_key());
        let msg = PrimeMsg::SuspectLeader { view: 2 };
        let signed = SignedMsg::sign(ReplicaId(3), msg, &mut kp);
        assert!(signed.verify(&reg));
        // Claiming a different sender fails.
        let mut forged = signed.clone();
        forged.from = ReplicaId(1);
        reg.register(Principal::Replica(1), KeyPair::generate(9).public_key());
        assert!(!forged.verify(&reg));
        // Tampering with the message fails.
        let mut tampered = signed.clone();
        tampered.msg = PrimeMsg::SuspectLeader { view: 3 };
        assert!(!tampered.verify(&reg));
        // Wire roundtrip preserves verification.
        let rt = SignedMsg::from_wire(&signed.to_wire()).expect("roundtrip");
        assert!(rt.verify(&reg));
    }

    #[test]
    fn aru_row_verification() {
        let mut kp = KeyPair::generate(4);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Replica(0), kp.public_key());
        let vector = vec![1, 2, 3, 4];
        let sig = kp.sign(&AruRow::signed_bytes(ReplicaId(0), &vector));
        let row = AruRow {
            replica: ReplicaId(0),
            vector,
            sig,
        };
        assert!(row.verify(&reg));
        let mut bad = row.clone();
        bad.vector[0] = 99;
        assert!(!bad.verify(&reg));
    }

    #[test]
    fn malformed_rejected() {
        assert!(PrimeMsg::from_wire(&[]).is_err());
        assert!(PrimeMsg::from_wire(&[99]).is_err());
        let msg = PrimeMsg::SuspectLeader { view: 1 };
        let bytes = msg.to_wire();
        assert!(PrimeMsg::from_wire(&bytes[..bytes.len() - 1]).is_err());
    }
}
