//! The execution core shared by the sequential and parallel schedulers.
//!
//! [`World`] owns the mutable network state (nodes, switches, links,
//! taps) in slot vectors so a parallel run can carve it into disjoint
//! per-shard views — a shard's `World` has `Some` only in the slots it
//! owns. [`Exec`] holds the event-delivery semantics, generic over an
//! [`EventSink`] so the same dispatch code feeds either the global
//! sequential queue or a shard's window-local queue. Keeping exactly one
//! copy of the delivery logic is what makes the digest-equivalence
//! argument tractable: the parallel scheduler cannot drift behaviorally
//! from the sequential one, only order events differently — and the
//! ordering is what the equivalence suite pins.

use std::collections::{BTreeMap, BTreeSet};

use obs::event::DropKind;
use obs::{Event as ObsEvent, ObsHub};
use rand::rngs::StdRng;
use rand::Rng;

use crate::arp::{ArpMode, ArpTable};
use crate::capture::{PacketRecord, Tap};
use crate::firewall::{Direction, Firewall};
use crate::link::{Link, LinkId};
use crate::packet::{ArpBody, ArpOp, EtherPayload, Frame, Packet, TransportKind};
use crate::process::{Action, Context, Process};
use crate::sim::EndpointRef;
use crate::switch::{Forward, Switch, SwitchId};
use crate::time::{SimDuration, SimTime};
use crate::types::{IpAddr, MacAddr, NodeId};

/// How long a host waits on an unanswered ARP request before
/// re-broadcasting it (see [`EventKind::ArpRetry`]).
pub(crate) const ARP_RETRY_INTERVAL: SimDuration = SimDuration::from_millis(250);

pub(crate) struct Interface {
    pub(crate) mac: MacAddr,
    pub(crate) ip: IpAddr,
    pub(crate) arp: ArpTable,
    pub(crate) link: Option<LinkId>,
    /// Packets parked while dynamic ARP resolves their next hop.
    pub(crate) pending: BTreeMap<IpAddr, Vec<Packet>>,
}

pub(crate) struct Node {
    #[allow(dead_code)]
    pub(crate) name: String,
    pub(crate) firewall: Firewall,
    pub(crate) interfaces: Vec<Interface>,
    pub(crate) listeners: BTreeSet<crate::types::Port>,
    pub(crate) process: Option<Box<dyn Process>>,
    pub(crate) promiscuous: bool,
    pub(crate) answers_arp_for_other_ifaces: bool,
    pub(crate) strict_interface_binding: bool,
    pub(crate) up: bool,
    /// Bumped on process replacement; stale Start/Timer events are dropped.
    pub(crate) generation: u32,
    /// Inbound packets the firewall silently dropped.
    pub(crate) firewall_drops: u64,
}

#[derive(Debug)]
pub(crate) enum EventKind {
    FrameAt {
        to: EndpointRef,
        frame: Frame,
        /// The link the frame is in flight on; if that link goes down
        /// before the arrival time, the frame is lost (no ghost
        /// deliveries after a flap heals).
        via: LinkId,
    },
    Timer {
        node: NodeId,
        timer: u64,
        generation: u32,
    },
    Start {
        node: NodeId,
        generation: u32,
    },
    /// Re-sends an ARP request if a resolution is still outstanding;
    /// without this, one lost request/reply frame on a lossy link would
    /// park the destination's packets forever.
    ArpRetry {
        node: NodeId,
        ifidx: usize,
        dst_ip: IpAddr,
        generation: u32,
    },
}

impl EventKind {
    /// The profiler stack this event dispatches under: frames charge
    /// the shared network lane, timers/starts/ARP retries charge the
    /// owning host by node name (sanitized so the folded-stack format
    /// survives arbitrary names).
    pub(crate) fn prof_stack(&self, world: &World) -> String {
        let host = |node: NodeId| {
            let name: String = world
                .node(node)
                .name
                .chars()
                .map(|c| {
                    if c == ';' || c.is_whitespace() {
                        '-'
                    } else {
                        c
                    }
                })
                .collect();
            format!("host;{name}")
        };
        match self {
            EventKind::FrameAt { .. } => "net;frame".to_string(),
            EventKind::Timer { node, .. } | EventKind::Start { node, .. } => host(*node),
            EventKind::ArpRetry { node, .. } => format!("{};arp", host(*node)),
        }
    }
}

/// Cached handles for the engine's hot-path counters, re-registered
/// whenever the hub changes (see [`crate::sim::Simulation::attach_obs`]).
/// Handles are `Arc`-backed, so shard clones share the same atomics —
/// counter totals are order-insensitive, so concurrent increments from
/// worker threads stay digest-safe.
#[derive(Clone)]
pub(crate) struct NetCounters {
    pub(crate) frames_sent: obs::Counter,
    pub(crate) frames_delivered: obs::Counter,
    pub(crate) frames_dropped: obs::Counter,
    pub(crate) packets_to_process: obs::Counter,
    pub(crate) firewall_drops: obs::Counter,
    pub(crate) arp_rejected: obs::Counter,
}

impl NetCounters {
    pub(crate) fn from_hub(hub: &ObsHub) -> Self {
        NetCounters {
            frames_sent: hub.counter("net.frames_sent"),
            frames_delivered: hub.counter("net.frames_delivered"),
            frames_dropped: hub.counter("net.frames_dropped"),
            packets_to_process: hub.counter("net.packets_to_process"),
            firewall_drops: hub.counter("net.firewall_drops"),
            arp_rejected: hub.counter("net.arp_rejected"),
        }
    }
}

/// Mutable network state, stored in slot vectors indexed by the public
/// ids. The sequential engine keeps every slot `Some`; a shard world
/// holds `Some` only for the entities it owns (plus clones of the cross
/// links it borders), so out-of-shard access is a loud panic instead of
/// a silent wrong answer.
pub(crate) struct World {
    pub(crate) nodes: Vec<Option<Node>>,
    pub(crate) switches: Vec<Option<Switch>>,
    pub(crate) links: Vec<Option<(Link, EndpointRef, EndpointRef)>>,
    pub(crate) taps: Vec<Option<(Tap, SwitchId)>>,
    pub(crate) logs: Vec<(SimTime, NodeId, String)>,
    pub(crate) rng: StdRng,
    pub(crate) obs: ObsHub,
    pub(crate) net: NetCounters,
}

impl World {
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("node not on this shard")
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("node not on this shard")
    }

    pub(crate) fn switch(&self, id: SwitchId) -> &Switch {
        self.switches[id.0 as usize]
            .as_ref()
            .expect("switch not on this shard")
    }

    pub(crate) fn switch_mut(&mut self, id: SwitchId) -> &mut Switch {
        self.switches[id.0 as usize]
            .as_mut()
            .expect("switch not on this shard")
    }

    pub(crate) fn link(&self, id: LinkId) -> &(Link, EndpointRef, EndpointRef) {
        self.links[id.0 as usize]
            .as_ref()
            .expect("link not on this shard")
    }

    pub(crate) fn link_mut(&mut self, id: LinkId) -> &mut (Link, EndpointRef, EndpointRef) {
        self.links[id.0 as usize]
            .as_mut()
            .expect("link not on this shard")
    }

    pub(crate) fn tap_mut(&mut self, id: crate::capture::TapId) -> &mut (Tap, SwitchId) {
        self.taps[id.0 as usize]
            .as_mut()
            .expect("tap not on this shard")
    }
}

/// Where [`Exec`] puts the events it schedules. The sequential engine
/// assigns global sequence numbers immediately; a parallel shard assigns
/// provisional ranks and routes cross-shard events to the coordinator.
pub(crate) trait EventSink {
    fn schedule(&mut self, at: SimTime, kind: EventKind);
}

/// One event dispatch worth of execution: delivery semantics over a
/// [`World`], emitting follow-up events into an [`EventSink`].
pub(crate) struct Exec<'a, S: EventSink> {
    pub(crate) world: &'a mut World,
    pub(crate) now: SimTime,
    pub(crate) sink: &'a mut S,
}

impl<S: EventSink> Exec<'_, S> {
    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.sink.schedule(at, kind);
    }

    pub(crate) fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start { node, generation } => {
                if self.world.node(node).generation == generation {
                    self.call_process(node, |p, ctx| p.on_start(ctx));
                }
            }
            EventKind::Timer {
                node,
                timer,
                generation,
            } => {
                let n = self.world.node(node);
                if n.up && n.generation == generation {
                    self.call_process(node, |p, ctx| p.on_timer(ctx, timer));
                }
            }
            EventKind::FrameAt { to, frame, via } => {
                // Frames queued on a link that has since gone down are
                // lost, not delivered on heal.
                if !self.world.link(via).0.up {
                    self.world.net.frames_dropped.inc();
                    return;
                }
                match to {
                    EndpointRef::SwitchPort { switch, port } => {
                        self.frame_at_switch(switch, port, frame)
                    }
                    EndpointRef::Nic { node, ifidx } => self.frame_at_nic(node, ifidx, frame),
                }
            }
            EventKind::ArpRetry {
                node,
                ifidx,
                dst_ip,
                generation,
            } => {
                self.arp_retry(node, ifidx, dst_ip, generation);
            }
        }
    }

    /// Invokes a process callback with a fresh [`Context`], then applies the
    /// buffered actions.
    fn call_process<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Process, &mut Context<'_>),
    {
        let Some(mut process) = self.world.node_mut(node).process.take() else {
            return;
        };
        let interfaces: Vec<(MacAddr, IpAddr)> = self
            .world
            .node(node)
            .interfaces
            .iter()
            .map(|i| (i.mac, i.ip))
            .collect();
        let mut actions = Vec::new();
        {
            let mut ctx = Context {
                node,
                now: self.now,
                interfaces: &interfaces,
                actions: &mut actions,
                rng: &mut self.world.rng,
                trace: None,
            };
            f(process.as_mut(), &mut ctx);
        }
        // Only put the process back if nothing replaced it meanwhile
        // (replace_process cannot run during dispatch, so this is safe).
        self.world.node_mut(node).process = Some(process);
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::SendPacket { ifidx, packet } => self.host_send(node, ifidx, packet),
                Action::SendRawFrame { ifidx, frame } => {
                    self.transmit_from_nic(node, ifidx, frame);
                }
                Action::SetTimer { delay, timer } => {
                    let at = self.now + delay;
                    let generation = self.world.node(node).generation;
                    self.push_event(
                        at,
                        EventKind::Timer {
                            node,
                            timer,
                            generation,
                        },
                    );
                }
                Action::Listen(port) => {
                    self.world.node_mut(node).listeners.insert(port);
                }
                Action::Unlisten(port) => {
                    self.world.node_mut(node).listeners.remove(&port);
                }
                Action::Log(line) => {
                    let now = self.now;
                    self.world.logs.push((now, node, line));
                }
            }
        }
    }

    /// The normal host send path: outbound firewall, ARP resolution, frame
    /// construction, transmission.
    fn host_send(&mut self, node: NodeId, ifidx: usize, packet: Packet) {
        {
            let n = self.world.node_mut(node);
            if !n.up {
                return;
            }
            if !n.firewall.permits(Direction::Outbound, &packet) {
                n.firewall_drops += 1;
                self.world.net.firewall_drops.inc();
                self.world.obs.journal(ObsEvent::PacketDrop {
                    node: node.0,
                    kind: DropKind::Firewall,
                });
                return;
            }
        }
        let dst_ip = packet.dst_ip;
        if dst_ip == IpAddr::BROADCAST {
            let src_mac = self.world.node(node).interfaces[ifidx].mac;
            let frame = Frame {
                src_mac,
                dst_mac: MacAddr::BROADCAST,
                payload: EtherPayload::Ip(packet),
            };
            self.transmit_from_nic(node, ifidx, frame);
            return;
        }
        let (resolved, src_mac, src_ip) = {
            let iface = &self.world.node(node).interfaces[ifidx];
            (iface.arp.resolve(dst_ip), iface.mac, iface.ip)
        };
        match resolved {
            Some(dst_mac) => {
                let frame = Frame {
                    src_mac,
                    dst_mac,
                    payload: EtherPayload::Ip(packet),
                };
                self.transmit_from_nic(node, ifidx, frame);
            }
            None => {
                let iface = &mut self.world.node_mut(node).interfaces[ifidx];
                if iface.arp.mode() == ArpMode::Static {
                    // Hardened host: unknown peers are unreachable, full stop.
                    self.world.net.frames_dropped.inc();
                    return;
                }
                // One in-flight ARP resolution per destination: further
                // packets just park on the pending queue (hosts do not
                // emit one ARP request per queued datagram).
                let resolution_in_flight = iface.pending.contains_key(&dst_ip);
                iface.pending.entry(dst_ip).or_default().push(packet);
                if resolution_in_flight {
                    return;
                }
                let frame = Frame {
                    src_mac,
                    dst_mac: MacAddr::BROADCAST,
                    payload: EtherPayload::Arp(ArpBody {
                        op: ArpOp::Request,
                        sender_ip: src_ip,
                        sender_mac: src_mac,
                        target_ip: dst_ip,
                    }),
                };
                self.transmit_from_nic(node, ifidx, frame);
                let generation = self.world.node(node).generation;
                let at = self.now + ARP_RETRY_INTERVAL;
                self.push_event(
                    at,
                    EventKind::ArpRetry {
                        node,
                        ifidx,
                        dst_ip,
                        generation,
                    },
                );
            }
        }
    }

    /// Fires while an ARP resolution is outstanding: re-broadcasts the
    /// request (the first one may have been lost) or, if the mapping
    /// arrived through an opportunistic learn that bypassed the reply
    /// path, flushes the parked packets directly.
    fn arp_retry(&mut self, node: NodeId, ifidx: usize, dst_ip: IpAddr, generation: u32) {
        let (still_pending, resolved, src_mac, src_ip) = {
            let n = self.world.node(node);
            if !n.up || n.generation != generation {
                return;
            }
            let iface = &n.interfaces[ifidx];
            (
                iface.pending.contains_key(&dst_ip),
                iface.arp.resolve(dst_ip).is_some(),
                iface.mac,
                iface.ip,
            )
        };
        if !still_pending {
            return;
        }
        if resolved {
            let ready = self.world.node_mut(node).interfaces[ifidx]
                .pending
                .remove(&dst_ip)
                .unwrap_or_default();
            for pkt in ready {
                self.host_send(node, ifidx, pkt);
            }
            return;
        }
        let frame = Frame {
            src_mac,
            dst_mac: MacAddr::BROADCAST,
            payload: EtherPayload::Arp(ArpBody {
                op: ArpOp::Request,
                sender_ip: src_ip,
                sender_mac: src_mac,
                target_ip: dst_ip,
            }),
        };
        self.transmit_from_nic(node, ifidx, frame);
        let at = self.now + ARP_RETRY_INTERVAL;
        self.push_event(
            at,
            EventKind::ArpRetry {
                node,
                ifidx,
                dst_ip,
                generation,
            },
        );
    }

    fn transmit_from_nic(&mut self, node: NodeId, ifidx: usize, frame: Frame) {
        if !self.world.node(node).up {
            return;
        }
        let Some(link_id) = self.world.node(node).interfaces[ifidx].link else {
            self.world.net.frames_dropped.inc();
            return;
        };
        let from = EndpointRef::Nic { node, ifidx };
        self.transmit(link_id, from, frame);
    }

    fn transmit(&mut self, link_id: LinkId, from: EndpointRef, frame: Frame) {
        self.world.net.frames_sent.inc();
        let (a, b, loss) = {
            let (link, a, b) = self.world.link(link_id);
            (*a, *b, link.spec.loss)
        };
        let a_to_b = a == from;
        debug_assert!(a_to_b || b == from, "endpoint not on link");
        let to = if a_to_b { b } else { a };
        if loss > 0.0 && self.world.rng.gen::<f64>() < loss {
            self.world.link_mut(link_id).0.loss_drops += 1;
            self.world.net.frames_dropped.inc();
            return;
        }
        let now = self.now;
        let scheduled = self
            .world
            .link_mut(link_id)
            .0
            .schedule(a_to_b, frame.wire_size(), now);
        match scheduled {
            Some(arrive) => self.push_event(
                arrive,
                EventKind::FrameAt {
                    to,
                    frame,
                    via: link_id,
                },
            ),
            None => self.world.net.frames_dropped.inc(),
        }
    }

    fn frame_at_switch(&mut self, switch: SwitchId, ingress: usize, frame: Frame) {
        // Span-port capture sees every frame entering the switch.
        let tap_ids = self.world.switch(switch).taps.clone();
        for tap_id in tap_ids {
            let rec = PacketRecord::from_frame(self.now, switch, &frame);
            self.world.tap_mut(tap_id).0.record(rec);
        }
        let decision = self
            .world
            .switch_mut(switch)
            .forward(ingress, frame.src_mac, frame.dst_mac);
        match decision {
            Forward::Ports(ports) => {
                for port in ports {
                    // An active partition confines frames to the ingress
                    // port's group.
                    if !self
                        .world
                        .switch(switch)
                        .same_partition_group(ingress, port)
                    {
                        self.world.switch_mut(switch).partition_drops += 1;
                        self.world.net.frames_dropped.inc();
                        continue;
                    }
                    if let Some(link_id) = self.world.switch(switch).ports[port] {
                        let from = EndpointRef::SwitchPort { switch, port };
                        self.transmit(link_id, from, frame.clone());
                    }
                }
            }
            Forward::Drop(_) => {
                self.world.net.frames_dropped.inc();
            }
        }
    }

    fn frame_at_nic(&mut self, node: NodeId, ifidx: usize, frame: Frame) {
        if !self.world.node(node).up {
            self.world.net.frames_dropped.inc();
            return;
        }
        self.world.net.frames_delivered.inc();
        let (my_mac, my_ip) = {
            let iface = &self.world.node(node).interfaces[ifidx];
            (iface.mac, iface.ip)
        };
        let addressed_to_me = frame.dst_mac == my_mac || frame.dst_mac.is_broadcast();
        if !addressed_to_me {
            if self.world.node(node).promiscuous {
                self.call_process(node, |p, ctx| p.on_promiscuous(ctx, ifidx, &frame));
            }
            return;
        }
        match frame.payload {
            EtherPayload::Arp(arp) => self.handle_arp(node, ifidx, my_mac, my_ip, arp),
            EtherPayload::Ip(packet) => self.handle_ip(node, ifidx, my_mac, my_ip, packet),
        }
    }

    fn handle_arp(
        &mut self,
        node: NodeId,
        ifidx: usize,
        my_mac: MacAddr,
        my_ip: IpAddr,
        arp: ArpBody,
    ) {
        match arp.op {
            ArpOp::Request => {
                // Opportunistic learn of the requester (dynamic mode only).
                {
                    let iface = &mut self.world.node_mut(node).interfaces[ifidx];
                    if iface.arp.mode() == ArpMode::Dynamic {
                        iface.arp.learn(arp.sender_ip, arp.sender_mac);
                    }
                }
                let answers_cross = self.world.node(node).answers_arp_for_other_ifaces;
                let owns_target = arp.target_ip == my_ip
                    || (answers_cross
                        && self
                            .world
                            .node(node)
                            .interfaces
                            .iter()
                            .any(|i| i.ip == arp.target_ip));
                if owns_target {
                    let reply = Frame {
                        src_mac: my_mac,
                        dst_mac: arp.sender_mac,
                        payload: EtherPayload::Arp(ArpBody {
                            op: ArpOp::Reply,
                            sender_ip: arp.target_ip,
                            sender_mac: my_mac,
                            target_ip: arp.sender_ip,
                        }),
                    };
                    self.transmit_from_nic(node, ifidx, reply);
                }
            }
            ArpOp::Reply => {
                let learned = {
                    let iface = &mut self.world.node_mut(node).interfaces[ifidx];
                    let before = iface.arp.rejected_updates;
                    let ok = iface.arp.learn(arp.sender_ip, arp.sender_mac);
                    let rejected = iface.arp.rejected_updates - before;
                    if !ok && rejected > 0 {
                        self.world.net.arp_rejected.add(rejected);
                        self.world.obs.journal(ObsEvent::PacketDrop {
                            node: node.0,
                            kind: DropKind::Arp,
                        });
                    }
                    ok
                };
                if learned {
                    // Flush packets that were waiting for this resolution.
                    let ready = self.world.node_mut(node).interfaces[ifidx]
                        .pending
                        .remove(&arp.sender_ip)
                        .unwrap_or_default();
                    for pkt in ready {
                        self.host_send(node, ifidx, pkt);
                    }
                }
            }
        }
    }

    fn handle_ip(
        &mut self,
        node: NodeId,
        ifidx: usize,
        _my_mac: MacAddr,
        my_ip: IpAddr,
        packet: Packet,
    ) {
        let is_mine = if self.world.node(node).strict_interface_binding {
            // Strong-host model: only the arrival interface's own address.
            packet.dst_ip == my_ip || packet.dst_ip == IpAddr::BROADCAST
        } else {
            packet.dst_ip == my_ip
                || packet.dst_ip == IpAddr::BROADCAST
                || self
                    .world
                    .node(node)
                    .interfaces
                    .iter()
                    .any(|i| i.ip == packet.dst_ip)
        };
        if !is_mine {
            // Steered here by a poisoned ARP entry: transit traffic.
            let trace = packet.trace;
            self.call_process(node, move |p, ctx| {
                ctx.trace = trace;
                p.on_transit(ctx, ifidx, packet);
            });
            return;
        }
        let permitted = self
            .world
            .node(node)
            .firewall
            .permits(Direction::Inbound, &packet);
        if !permitted {
            let n = self.world.node_mut(node);
            n.firewall_drops += 1;
            let responds = n.firewall.responds_to_blocked_syn();
            self.world.net.firewall_drops.inc();
            self.world.obs.journal(ObsEvent::PacketDrop {
                node: node.0,
                kind: DropKind::Firewall,
            });
            if packet.kind == TransportKind::TcpSyn && responds {
                self.respond(node, ifidx, &packet, TransportKind::TcpRst);
            }
            return;
        }
        match packet.kind {
            TransportKind::TcpSyn => {
                let open = self.world.node(node).listeners.contains(&packet.dst_port);
                let kind = if open {
                    TransportKind::TcpSynAck
                } else {
                    TransportKind::TcpRst
                };
                self.respond(node, ifidx, &packet, kind);
                if open {
                    self.world.net.packets_to_process.inc();
                    let trace = packet.trace;
                    self.call_process(node, move |p, ctx| {
                        ctx.trace = trace;
                        p.on_packet(ctx, packet);
                    });
                }
            }
            TransportKind::Ping => {
                self.respond(node, ifidx, &packet, TransportKind::Pong);
            }
            _ => {
                self.world.net.packets_to_process.inc();
                let trace = packet.trace;
                self.call_process(node, move |p, ctx| {
                    ctx.trace = trace;
                    p.on_packet(ctx, packet);
                });
            }
        }
    }

    fn respond(&mut self, node: NodeId, ifidx: usize, to: &Packet, kind: TransportKind) {
        let my_ip = self.world.node(node).interfaces[ifidx].ip;
        let reply = Packet {
            src_ip: my_ip,
            dst_ip: to.src_ip,
            src_port: to.dst_port,
            dst_port: to.src_port,
            kind,
            payload: bytes::Bytes::new(),
            trace: to.trace,
        };
        self.host_send(node, ifidx, reply);
    }
}
