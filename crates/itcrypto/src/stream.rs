//! HMAC-counter-mode stream cipher used for Spines link encryption.
//!
//! The keystream block `i` for nonce `n` is `HMAC-SHA-256(key, n || i)`;
//! ciphertext is plaintext XOR keystream. This is a textbook PRF-in-counter-
//! mode construction — real (given a strong PRF), simple, and deterministic.
//! The red-team experiment hinges on this layer: the modified Spines daemon
//! without the link keys cannot produce valid traffic (§IV-B).

use crate::hmac::hmac_sha256;

/// Encrypts or decrypts `data` in place (XOR stream, so the operation is an
/// involution).
///
/// # Examples
///
/// ```
/// use itcrypto::stream::xor_stream;
///
/// let key = [7u8; 32];
/// let mut data = b"breaker B57 trip".to_vec();
/// xor_stream(&key, 42, &mut data);
/// assert_ne!(&data, b"breaker B57 trip");
/// xor_stream(&key, 42, &mut data);
/// assert_eq!(&data, b"breaker B57 trip");
/// ```
pub fn xor_stream(key: &[u8; 32], nonce: u64, data: &mut [u8]) {
    let mut counter: u64 = 0;
    let mut offset = 0;
    while offset < data.len() {
        let mut block_input = [0u8; 16];
        block_input[..8].copy_from_slice(&nonce.to_be_bytes());
        block_input[8..].copy_from_slice(&counter.to_be_bytes());
        let ks = hmac_sha256(key, &block_input);
        let take = (data.len() - offset).min(32);
        for i in 0..take {
            data[offset + i] ^= ks.as_bytes()[i];
        }
        offset += take;
        counter += 1;
    }
}

/// An authenticated, encrypted envelope: encrypt-then-MAC with separate keys
/// derived from one link key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBox {
    /// Nonce used for the stream cipher (unique per message per link).
    pub nonce: u64,
    /// Ciphertext bytes.
    pub ciphertext: Vec<u8>,
    /// HMAC tag over `nonce || ciphertext`.
    pub tag: [u8; 32],
}

/// Seals `plaintext` under `link_key` with the given `nonce`.
pub fn seal(link_key: &[u8; 32], nonce: u64, plaintext: &[u8]) -> SealedBox {
    let enc_key = crate::hmac::derive_key(link_key, b"enc");
    let mac_key = crate::hmac::derive_key(link_key, b"mac");
    let mut ciphertext = plaintext.to_vec();
    xor_stream(&enc_key, nonce, &mut ciphertext);
    let mut mac_input = nonce.to_be_bytes().to_vec();
    mac_input.extend_from_slice(&ciphertext);
    let tag = hmac_sha256(&mac_key, &mac_input).0;
    SealedBox {
        nonce,
        ciphertext,
        tag,
    }
}

/// Opens a sealed box, returning the plaintext if the tag verifies.
pub fn open(link_key: &[u8; 32], sealed: &SealedBox) -> Option<Vec<u8>> {
    let enc_key = crate::hmac::derive_key(link_key, b"enc");
    let mac_key = crate::hmac::derive_key(link_key, b"mac");
    let mut mac_input = sealed.nonce.to_be_bytes().to_vec();
    mac_input.extend_from_slice(&sealed.ciphertext);
    let expect = hmac_sha256(&mac_key, &mac_input);
    if !crate::hmac::verify_tag(&expect, &crate::sha256::Digest(sealed.tag)) {
        return None;
    }
    let mut plaintext = sealed.ciphertext.clone();
    xor_stream(&enc_key, sealed.nonce, &mut plaintext);
    Some(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [9u8; 32];

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal(&KEY, 1, b"hello plant");
        assert_eq!(open(&KEY, &sealed), Some(b"hello plant".to_vec()));
    }

    #[test]
    fn wrong_key_fails() {
        let sealed = seal(&KEY, 1, b"hello");
        let other = [8u8; 32];
        assert_eq!(open(&other, &sealed), None);
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let mut sealed = seal(&KEY, 1, b"hello");
        sealed.ciphertext[0] ^= 0xff;
        assert_eq!(open(&KEY, &sealed), None);
    }

    #[test]
    fn tampered_nonce_fails() {
        let mut sealed = seal(&KEY, 1, b"hello");
        sealed.nonce = 2;
        assert_eq!(open(&KEY, &sealed), None);
    }

    #[test]
    fn tampered_tag_fails() {
        let mut sealed = seal(&KEY, 1, b"hello");
        sealed.tag[31] ^= 1;
        assert_eq!(open(&KEY, &sealed), None);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_by_nonce() {
        let a = seal(&KEY, 1, b"same message");
        let b = seal(&KEY, 2, b"same message");
        assert_ne!(a.ciphertext, b"same message");
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn empty_message_roundtrip() {
        let sealed = seal(&KEY, 7, b"");
        assert_eq!(open(&KEY, &sealed), Some(Vec::new()));
    }

    #[test]
    fn long_message_roundtrip() {
        let msg: Vec<u8> = (0..10_000u32).map(|x| x as u8).collect();
        let sealed = seal(&KEY, 3, &msg);
        assert_eq!(open(&KEY, &sealed), Some(msg));
    }

    #[test]
    fn xor_stream_block_boundaries() {
        // Lengths around the 32-byte block size.
        for len in [0usize, 1, 31, 32, 33, 64, 65] {
            let mut data: Vec<u8> = (0..len).map(|x| x as u8).collect();
            let orig = data.clone();
            xor_stream(&KEY, 5, &mut data);
            xor_stream(&KEY, 5, &mut data);
            assert_eq!(data, orig, "len={len}");
        }
    }
}
