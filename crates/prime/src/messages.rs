//! Prime protocol messages and their signed envelope.

use bytes::Bytes;
use itcrypto::keys::{KeyPair, KeyRegistry, Principal};
use itcrypto::schnorr::Signature;
use itcrypto::sha256::Digest;
use itcrypto::verify_cache::VerifyCache;
use simnet::wire::{DecodeError, Reader, Wire, Writer};

use crate::types::{ReplicaId, SignedUpdate};

/// A signed PO-ARU vector as carried inside a pre-prepare matrix row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AruRow {
    /// The replica whose cumulative-ack vector this is.
    pub replica: ReplicaId,
    /// `vector[o]` = highest contiguous PO-Request sequence received from
    /// origin `o` (1-based; 0 = none).
    pub vector: Vec<u64>,
    /// That replica's signature over the vector.
    pub sig: Signature,
}

impl AruRow {
    /// The byte string the signature covers.
    pub fn signed_bytes(replica: ReplicaId, vector: &[u64]) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"po-aru")
            .put_u32(replica.0)
            .put_u32(vector.len() as u32);
        for v in vector {
            w.put_u64(*v);
        }
        w.finish().to_vec()
    }

    /// Verifies the row's signature.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            Principal::Replica(self.replica.0),
            &Self::signed_bytes(self.replica, &self.vector),
            &self.sig,
        )
    }

    /// [`AruRow::verify`] through a verdict cache. The hottest hit
    /// source: the same row recurs in every pre-prepare matrix that
    /// carries it and in repeated PO-ARU gossip.
    pub fn verify_cached(&self, registry: &KeyRegistry, cache: &mut VerifyCache) -> bool {
        let bytes = Self::signed_bytes(self.replica, &self.vector);
        let key = VerifyCache::key(
            b"prime.aru-row",
            self.replica.0 as u64,
            &bytes,
            &self.sig.to_bytes(),
        );
        cache.check(key, || {
            registry.verify(Principal::Replica(self.replica.0), &bytes, &self.sig)
        })
    }
}

impl Wire for AruRow {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.replica.0).put_u32(self.vector.len() as u32);
        for v in &self.vector {
            w.put_u64(*v);
        }
        w.put_raw(&self.sig.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let replica = ReplicaId(r.get_u32()?);
        let n = r.get_u32()? as usize;
        if n > 1024 {
            return Err(DecodeError::new("aru vector length"));
        }
        let mut vector = Vec::with_capacity(n);
        for _ in 0..n {
            vector.push(r.get_u64()?);
        }
        let sig: [u8; 16] = r
            .get_raw(16)?
            .try_into()
            .map_err(|_| DecodeError::new("sig"))?;
        Ok(AruRow {
            replica,
            vector,
            sig: Signature::from_bytes(&sig),
        })
    }
}

/// The Prime protocol message set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PrimeMsg {
    /// Pre-ordering: replica `origin` disseminates a client update under
    /// its local sequence `po_seq` (1-based).
    PoRequest {
        /// Disseminating replica.
        origin: ReplicaId,
        /// Its local sequence for this update.
        po_seq: u64,
        /// The client update.
        update: SignedUpdate,
    },
    /// Pre-ordering: signed cumulative-ack vector.
    PoAru {
        /// The signed row (reused as matrix row in pre-prepares).
        row: AruRow,
    },
    /// Ordering: the leader's proposal for global sequence `seq`.
    PrePrepare {
        /// View this proposal belongs to.
        view: u64,
        /// Global ordering sequence (1-based, contiguous per view era).
        seq: u64,
        /// Matrix of signed PO-ARU rows.
        matrix: Vec<AruRow>,
    },
    /// Ordering: endorsement of a pre-prepare.
    Prepare {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Digest of the pre-prepare matrix.
        digest: Digest,
    },
    /// Ordering: commit vote after a prepare certificate.
    Commit {
        /// View.
        view: u64,
        /// Sequence.
        seq: u64,
        /// Digest of the pre-prepare matrix.
        digest: Digest,
    },
    /// Reconciliation: ask for a missing covered PO-Request.
    PoFetch {
        /// Origin replica of the wanted request.
        origin: ReplicaId,
        /// Its sequence.
        po_seq: u64,
    },
    /// Reconciliation: supply a PO-Request. Carries the *original signed
    /// envelope* from the origin so a relaying replica cannot forge the
    /// (origin, sequence) → update binding.
    PoData {
        /// Wire bytes of the origin's original `SignedMsg(PoRequest)`.
        original: Vec<u8>,
    },
    /// Leader suspicion for the given view (TAT bound exceeded).
    SuspectLeader {
        /// The suspected view.
        view: u64,
    },
    /// View change vote. Carries the replica's prepared-but-uncommitted
    /// proposal (if any) so the new leader can re-propose the *same*
    /// matrix, preserving per-sequence agreement across views.
    ViewChange {
        /// The view being moved to.
        new_view: u64,
        /// Highest global sequence this replica has committed.
        max_committed: u64,
        /// Sequence of the prepared-but-uncommitted proposal (0 = none).
        prepared_seq: u64,
        /// View in which that proposal was prepared.
        prepared_view: u64,
        /// The prepared matrix (empty when `prepared_seq` is 0).
        prepared_matrix: Vec<AruRow>,
    },
    /// New leader's installation message.
    NewView {
        /// The installed view.
        view: u64,
        /// First sequence the new leader will propose.
        start_seq: u64,
    },
    /// Periodic application checkpoint.
    Checkpoint {
        /// Number of updates executed.
        exec_seq: u64,
        /// Application state digest at that point.
        app_digest: Digest,
    },
    /// Catch-up: ask peers for current state (after recovery/partition).
    CatchupRequest {
        /// The requester's executed count.
        have_exec_seq: u64,
    },
    /// Catch-up: a peer's state offer. Carries the *application-level*
    /// snapshot — the §III-A signaling between replication and SCADA app.
    CatchupReply {
        /// Executed update count at the snapshot.
        exec_seq: u64,
        /// Application digest at the snapshot.
        app_digest: Digest,
        /// Serialized application snapshot.
        snapshot: Vec<u8>,
        /// Ordering sequence to resume from.
        next_order_seq: u64,
        /// Cumulative execution-coverage vector at the snapshot.
        exec_cover: Vec<u64>,
        /// View at the snapshot.
        view: u64,
    },
    /// Companion to [`PrimeMsg::CatchupReply`], sent immediately before
    /// it when [`crate::types::Config::transfer_dedup`] is armed: the
    /// sender's client duplicate-suppression table at the snapshot, one
    /// `(client, contiguous_through, extras)` entry per client — the
    /// executed client-seq set is `1..=contiguous_through` plus the
    /// sparse `extras`. Without this, a recovered replica executes
    /// duplicate orderings its peers suppressed and its execution
    /// numbering (and app digest) silently forks from the quorum's. A
    /// separate message (rather than a `CatchupReply` field) keeps the
    /// legacy catch-up wire format byte-identical when the flag is off.
    CatchupDedup {
        /// Executed update count of the reply this table accompanies.
        exec_seq: u64,
        /// The dedup table.
        dedup: Vec<(u32, u64, Vec<u64>)>,
    },
}

impl PrimeMsg {
    /// The profiler phase stack this message belongs to, in folded-stack
    /// form (`subsystem;phase;kind`). The middle segment is the paper's
    /// protocol-phase taxonomy — pre-ordering, ordering, and the
    /// checkpoint/catch-up machinery — so `obs::prof` attribution tables
    /// aggregate cleanly per phase.
    pub fn prof_stack(&self) -> &'static str {
        match self {
            PrimeMsg::PoRequest { .. } => "prime;preorder;po_request",
            PrimeMsg::PoAru { .. } => "prime;preorder;po_aru",
            PrimeMsg::PoFetch { .. } => "prime;preorder;po_fetch",
            PrimeMsg::PoData { .. } => "prime;preorder;po_data",
            PrimeMsg::PrePrepare { .. } => "prime;order;pre_prepare",
            PrimeMsg::Prepare { .. } => "prime;order;prepare",
            PrimeMsg::Commit { .. } => "prime;order;commit",
            PrimeMsg::SuspectLeader { .. } => "prime;order;suspect",
            PrimeMsg::ViewChange { .. } => "prime;order;view_change",
            PrimeMsg::NewView { .. } => "prime;order;new_view",
            PrimeMsg::Checkpoint { .. } => "prime;catchup;checkpoint",
            PrimeMsg::CatchupRequest { .. } => "prime;catchup;request",
            PrimeMsg::CatchupReply { .. } => "prime;catchup;reply",
            PrimeMsg::CatchupDedup { .. } => "prime;catchup;dedup",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            PrimeMsg::PoRequest { .. } => 0,
            PrimeMsg::PoAru { .. } => 1,
            PrimeMsg::PrePrepare { .. } => 2,
            PrimeMsg::Prepare { .. } => 3,
            PrimeMsg::Commit { .. } => 4,
            PrimeMsg::PoFetch { .. } => 5,
            PrimeMsg::PoData { .. } => 6,
            PrimeMsg::SuspectLeader { .. } => 7,
            PrimeMsg::ViewChange { .. } => 8,
            PrimeMsg::NewView { .. } => 9,
            PrimeMsg::Checkpoint { .. } => 10,
            PrimeMsg::CatchupRequest { .. } => 11,
            PrimeMsg::CatchupReply { .. } => 12,
            PrimeMsg::CatchupDedup { .. } => 13,
        }
    }
}

fn put_u64_vec(w: &mut Writer, v: &[u64]) {
    w.put_u32(v.len() as u32);
    for x in v {
        w.put_u64(*x);
    }
}

fn get_u64_vec(r: &mut Reader<'_>) -> Result<Vec<u64>, DecodeError> {
    let n = r.get_u32()? as usize;
    if n > 4096 {
        return Err(DecodeError::new("u64 vec length"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

impl Wire for PrimeMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
        match self {
            PrimeMsg::PoRequest {
                origin,
                po_seq,
                update,
            } => {
                w.put_u32(origin.0).put_u64(*po_seq);
                update.encode(w);
            }
            PrimeMsg::PoAru { row } => row.encode(w),
            PrimeMsg::PrePrepare { view, seq, matrix } => {
                w.put_u64(*view).put_u64(*seq).put_u32(matrix.len() as u32);
                for row in matrix {
                    row.encode(w);
                }
            }
            PrimeMsg::Prepare { view, seq, digest } | PrimeMsg::Commit { view, seq, digest } => {
                w.put_u64(*view).put_u64(*seq).put_raw(digest.as_bytes());
            }
            PrimeMsg::PoFetch { origin, po_seq } => {
                w.put_u32(origin.0).put_u64(*po_seq);
            }
            PrimeMsg::PoData { original } => {
                w.put_bytes(original);
            }
            PrimeMsg::SuspectLeader { view } => {
                w.put_u64(*view);
            }
            PrimeMsg::ViewChange {
                new_view,
                max_committed,
                prepared_seq,
                prepared_view,
                prepared_matrix,
            } => {
                w.put_u64(*new_view)
                    .put_u64(*max_committed)
                    .put_u64(*prepared_seq)
                    .put_u64(*prepared_view);
                w.put_u32(prepared_matrix.len() as u32);
                for row in prepared_matrix {
                    row.encode(w);
                }
            }
            PrimeMsg::NewView { view, start_seq } => {
                w.put_u64(*view).put_u64(*start_seq);
            }
            PrimeMsg::Checkpoint {
                exec_seq,
                app_digest,
            } => {
                w.put_u64(*exec_seq).put_raw(app_digest.as_bytes());
            }
            PrimeMsg::CatchupRequest { have_exec_seq } => {
                w.put_u64(*have_exec_seq);
            }
            PrimeMsg::CatchupReply {
                exec_seq,
                app_digest,
                snapshot,
                next_order_seq,
                exec_cover,
                view,
            } => {
                w.put_u64(*exec_seq)
                    .put_raw(app_digest.as_bytes())
                    .put_bytes(snapshot);
                w.put_u64(*next_order_seq);
                put_u64_vec(w, exec_cover);
                w.put_u64(*view);
            }
            PrimeMsg::CatchupDedup { exec_seq, dedup } => {
                w.put_u64(*exec_seq);
                w.put_u32(dedup.len() as u32);
                for (client, through, extras) in dedup {
                    w.put_u32(*client);
                    w.put_u64(*through);
                    put_u64_vec(w, extras);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.get_u8()?;
        let digest = |r: &mut Reader<'_>| -> Result<Digest, DecodeError> {
            let raw: [u8; 32] = r
                .get_raw(32)?
                .try_into()
                .map_err(|_| DecodeError::new("digest"))?;
            Ok(Digest(raw))
        };
        Ok(match tag {
            0 => PrimeMsg::PoRequest {
                origin: ReplicaId(r.get_u32()?),
                po_seq: r.get_u64()?,
                update: SignedUpdate::decode(r)?,
            },
            1 => PrimeMsg::PoAru {
                row: AruRow::decode(r)?,
            },
            2 => {
                let view = r.get_u64()?;
                let seq = r.get_u64()?;
                let n = r.get_u32()? as usize;
                if n > 1024 {
                    return Err(DecodeError::new("matrix size"));
                }
                let mut matrix = Vec::with_capacity(n);
                for _ in 0..n {
                    matrix.push(AruRow::decode(r)?);
                }
                PrimeMsg::PrePrepare { view, seq, matrix }
            }
            3 => PrimeMsg::Prepare {
                view: r.get_u64()?,
                seq: r.get_u64()?,
                digest: digest(r)?,
            },
            4 => PrimeMsg::Commit {
                view: r.get_u64()?,
                seq: r.get_u64()?,
                digest: digest(r)?,
            },
            5 => PrimeMsg::PoFetch {
                origin: ReplicaId(r.get_u32()?),
                po_seq: r.get_u64()?,
            },
            6 => PrimeMsg::PoData {
                original: r.get_bytes()?,
            },
            7 => PrimeMsg::SuspectLeader { view: r.get_u64()? },
            8 => {
                let new_view = r.get_u64()?;
                let max_committed = r.get_u64()?;
                let prepared_seq = r.get_u64()?;
                let prepared_view = r.get_u64()?;
                let n = r.get_u32()? as usize;
                if n > 1024 {
                    return Err(DecodeError::new("vc matrix size"));
                }
                let mut prepared_matrix = Vec::with_capacity(n);
                for _ in 0..n {
                    prepared_matrix.push(AruRow::decode(r)?);
                }
                PrimeMsg::ViewChange {
                    new_view,
                    max_committed,
                    prepared_seq,
                    prepared_view,
                    prepared_matrix,
                }
            }
            9 => PrimeMsg::NewView {
                view: r.get_u64()?,
                start_seq: r.get_u64()?,
            },
            10 => PrimeMsg::Checkpoint {
                exec_seq: r.get_u64()?,
                app_digest: digest(r)?,
            },
            11 => PrimeMsg::CatchupRequest {
                have_exec_seq: r.get_u64()?,
            },
            12 => PrimeMsg::CatchupReply {
                exec_seq: r.get_u64()?,
                app_digest: digest(r)?,
                snapshot: r.get_bytes()?,
                next_order_seq: r.get_u64()?,
                exec_cover: get_u64_vec(r)?,
                view: r.get_u64()?,
            },
            13 => PrimeMsg::CatchupDedup {
                exec_seq: r.get_u64()?,
                dedup: {
                    let n = r.get_u32()? as usize;
                    if n > 4096 {
                        return Err(DecodeError::new("dedup table length"));
                    }
                    let mut table = Vec::with_capacity(n);
                    for _ in 0..n {
                        let client = r.get_u32()?;
                        let through = r.get_u64()?;
                        table.push((client, through, get_u64_vec(r)?));
                    }
                    table
                },
            },
            _ => return Err(DecodeError::new("prime message tag")),
        })
    }
}

/// A Prime message signed by its sending replica.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedMsg {
    /// The sender.
    pub from: ReplicaId,
    /// The message.
    pub msg: PrimeMsg,
    /// Signature over `from || msg` bytes.
    pub sig: Signature,
}

impl SignedMsg {
    fn signed_bytes(from: ReplicaId, msg: &PrimeMsg) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(b"prime").put_u32(from.0);
        msg.encode(&mut w);
        w.finish().to_vec()
    }

    /// Signs a message as `from`.
    pub fn sign(from: ReplicaId, msg: PrimeMsg, key: &mut KeyPair) -> Self {
        let sig = key.sign(&Self::signed_bytes(from, &msg));
        SignedMsg { from, msg, sig }
    }

    /// Verifies the envelope against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            Principal::Replica(self.from.0),
            &Self::signed_bytes(self.from, &self.msg),
            &self.sig,
        )
    }

    /// [`SignedMsg::verify`] through a verdict cache. The key commits to
    /// the full signed byte string and signature, so the cached verdict
    /// is identical to the uncached one for any input, tampered or not.
    pub fn verify_cached(&self, registry: &KeyRegistry, cache: &mut VerifyCache) -> bool {
        let bytes = Self::signed_bytes(self.from, &self.msg);
        let key = VerifyCache::key(
            b"prime.msg",
            self.from.0 as u64,
            &bytes,
            &self.sig.to_bytes(),
        );
        cache.check(key, || {
            registry.verify(Principal::Replica(self.from.0), &bytes, &self.sig)
        })
    }
}

/// A signed message bundled with its wire bytes, produced in one pass at
/// signing time ("serialize-once"). The wire encoding is recovered from
/// the signing serialization instead of encoding the message a second
/// time, and the [`Bytes`] payload is reference-counted, so broadcasting
/// to `n - 1` peers clones a pointer, not the message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The signed message, for local dispatch without re-parsing.
    pub msg: SignedMsg,
    /// Exactly the bytes `msg.to_wire()` would produce, ready to send.
    pub wire: Bytes,
}

impl Envelope {
    /// Signs `msg` as `from`, deriving the wire bytes from the signing
    /// serialization: the wire form is `from || msg || sig`, i.e. the
    /// signed bytes minus the 5-byte domain tag, plus the signature.
    pub fn sign(from: ReplicaId, msg: PrimeMsg, key: &mut KeyPair) -> Self {
        let signed = SignedMsg::signed_bytes(from, &msg);
        let sig = key.sign(&signed);
        let mut wire = Vec::with_capacity(signed.len() - 5 + 16);
        wire.extend_from_slice(&signed[5..]);
        wire.extend_from_slice(&sig.to_bytes());
        Envelope {
            msg: SignedMsg { from, msg, sig },
            wire: Bytes::from(wire),
        }
    }
}

impl Wire for SignedMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.from.0);
        self.msg.encode(w);
        w.put_raw(&self.sig.to_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let from = ReplicaId(r.get_u32()?);
        let msg = PrimeMsg::decode(r)?;
        let sig: [u8; 16] = r
            .get_raw(16)?
            .try_into()
            .map_err(|_| DecodeError::new("sig"))?;
        Ok(SignedMsg {
            from,
            msg,
            sig: Signature::from_bytes(&sig),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Update;
    use bytes::Bytes;
    use itcrypto::keys::KeyPair;

    fn sample_update() -> SignedUpdate {
        let mut kp = KeyPair::generate(1);
        let update = Update::new(1, 1, Bytes::from_static(b"u"));
        let sig = kp.sign(&update.to_wire());
        SignedUpdate { update, sig }
    }

    fn roundtrip(msg: PrimeMsg) {
        let bytes = msg.to_wire();
        assert_eq!(PrimeMsg::from_wire(&bytes).expect("roundtrip"), msg);
    }

    #[test]
    fn envelope_wire_matches_encode() {
        // The serialize-once wire bytes must be exactly what a separate
        // `to_wire` pass would produce, for every message shape.
        let mut kp = KeyPair::generate(9);
        let vector = vec![1, 2, 3];
        let sig = kp.sign(&AruRow::signed_bytes(ReplicaId(0), &vector));
        let row = AruRow {
            replica: ReplicaId(0),
            vector,
            sig,
        };
        let msgs = [
            PrimeMsg::PoRequest {
                origin: ReplicaId(1),
                po_seq: 5,
                update: sample_update(),
            },
            PrimeMsg::PrePrepare {
                view: 1,
                seq: 9,
                matrix: vec![row.clone(), row],
            },
            PrimeMsg::Prepare {
                view: 1,
                seq: 9,
                digest: Digest([7; 32]),
            },
            PrimeMsg::SuspectLeader { view: 4 },
        ];
        for msg in msgs {
            let env = Envelope::sign(ReplicaId(1), msg, &mut kp);
            assert_eq!(env.wire, env.msg.to_wire());
            assert_eq!(SignedMsg::from_wire(&env.wire).expect("decodes"), env.msg);
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        let mut kp = KeyPair::generate(2);
        let vector = vec![3, 0, 7];
        let sig = kp.sign(&AruRow::signed_bytes(ReplicaId(2), &vector));
        let row = AruRow {
            replica: ReplicaId(2),
            vector,
            sig,
        };
        roundtrip(PrimeMsg::PoRequest {
            origin: ReplicaId(1),
            po_seq: 5,
            update: sample_update(),
        });
        roundtrip(PrimeMsg::PoAru { row: row.clone() });
        roundtrip(PrimeMsg::PrePrepare {
            view: 1,
            seq: 9,
            matrix: vec![row.clone(), row.clone()],
        });
        roundtrip(PrimeMsg::Prepare {
            view: 1,
            seq: 9,
            digest: Digest([7; 32]),
        });
        roundtrip(PrimeMsg::Commit {
            view: 1,
            seq: 9,
            digest: Digest([8; 32]),
        });
        roundtrip(PrimeMsg::PoFetch {
            origin: ReplicaId(0),
            po_seq: 3,
        });
        roundtrip(PrimeMsg::PoData {
            original: vec![1, 2, 3, 4],
        });
        roundtrip(PrimeMsg::SuspectLeader { view: 4 });
        roundtrip(PrimeMsg::ViewChange {
            new_view: 5,
            max_committed: 10,
            prepared_seq: 11,
            prepared_view: 4,
            prepared_matrix: vec![row.clone()],
        });
        roundtrip(PrimeMsg::NewView {
            view: 5,
            start_seq: 12,
        });
        roundtrip(PrimeMsg::Checkpoint {
            exec_seq: 100,
            app_digest: Digest([9; 32]),
        });
        roundtrip(PrimeMsg::CatchupRequest { have_exec_seq: 4 });
        roundtrip(PrimeMsg::CatchupReply {
            exec_seq: 100,
            app_digest: Digest([1; 32]),
            snapshot: vec![1, 2, 3],
            next_order_seq: 50,
            exec_cover: vec![9, 9, 9, 9],
            view: 2,
        });
        roundtrip(PrimeMsg::CatchupDedup {
            exec_seq: 100,
            dedup: vec![(7, 40, vec![42, 44]), (9, 0, vec![])],
        });
        roundtrip(PrimeMsg::CatchupDedup {
            exec_seq: 3,
            dedup: Vec::new(),
        });
    }

    #[test]
    fn signed_envelope_verifies_and_detects_tamper() {
        let mut kp = KeyPair::generate(3);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Replica(3), kp.public_key());
        let msg = PrimeMsg::SuspectLeader { view: 2 };
        let signed = SignedMsg::sign(ReplicaId(3), msg, &mut kp);
        assert!(signed.verify(&reg));
        // Claiming a different sender fails.
        let mut forged = signed.clone();
        forged.from = ReplicaId(1);
        reg.register(Principal::Replica(1), KeyPair::generate(9).public_key());
        assert!(!forged.verify(&reg));
        // Tampering with the message fails.
        let mut tampered = signed.clone();
        tampered.msg = PrimeMsg::SuspectLeader { view: 3 };
        assert!(!tampered.verify(&reg));
        // Wire roundtrip preserves verification.
        let rt = SignedMsg::from_wire(&signed.to_wire()).expect("roundtrip");
        assert!(rt.verify(&reg));
    }

    #[test]
    fn aru_row_verification() {
        let mut kp = KeyPair::generate(4);
        let mut reg = KeyRegistry::new();
        reg.register(Principal::Replica(0), kp.public_key());
        let vector = vec![1, 2, 3, 4];
        let sig = kp.sign(&AruRow::signed_bytes(ReplicaId(0), &vector));
        let row = AruRow {
            replica: ReplicaId(0),
            vector,
            sig,
        };
        assert!(row.verify(&reg));
        let mut bad = row.clone();
        bad.vector[0] = 99;
        assert!(!bad.verify(&reg));
    }

    #[test]
    fn malformed_rejected() {
        assert!(PrimeMsg::from_wire(&[]).is_err());
        assert!(PrimeMsg::from_wire(&[99]).is_err());
        let msg = PrimeMsg::SuspectLeader { view: 1 };
        let bytes = msg.to_wire();
        assert!(PrimeMsg::from_wire(&bytes[..bytes.len() - 1]).is_err());
    }
}
