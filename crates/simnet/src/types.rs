//! Core identifier newtypes: nodes, MAC addresses, IP addresses, ports.

use std::fmt;

/// Identifies a host in the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministically derives a MAC from a node id and interface index
    /// (locally-administered OUI `02:53:50` = "SP" for Spire).
    pub fn derived(node: NodeId, ifidx: u8) -> MacAddr {
        let n = node.0.to_be_bytes();
        MacAddr([0x02, 0x53, 0x50, n[2], n[3], ifidx])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// An IPv4-style address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpAddr(pub [u8; 4]);

impl IpAddr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: IpAddr = IpAddr([0, 0, 0, 0]);
    /// Limited broadcast `255.255.255.255`.
    pub const BROADCAST: IpAddr = IpAddr([255, 255, 255, 255]);

    /// Builds an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr([a, b, c, d])
    }
}

impl fmt::Debug for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl From<[u8; 4]> for IpAddr {
    fn from(octets: [u8; 4]) -> Self {
        IpAddr(octets)
    }
}

/// A transport-layer port number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Port(pub u16);

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_macs_unique_per_node_and_interface() {
        let a = MacAddr::derived(NodeId(1), 0);
        let b = MacAddr::derived(NodeId(1), 1);
        let c = MacAddr::derived(NodeId(2), 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn display_formats() {
        assert_eq!(IpAddr::new(10, 0, 1, 2).to_string(), "10.0.1.2");
        assert_eq!(
            MacAddr([2, 0x53, 0x50, 0, 1, 0]).to_string(),
            "02:53:50:00:01:00"
        );
        assert_eq!(NodeId(4).to_string(), "node4");
        assert_eq!(Port(8100).to_string(), "8100");
    }

    #[test]
    fn ip_from_octets() {
        let ip: IpAddr = [192, 168, 1, 1].into();
        assert_eq!(ip, IpAddr::new(192, 168, 1, 1));
    }
}
