//! Deterministic observability for the simulated Spire deployment.
//!
//! The paper's evidence is observational — view-change counts over six
//! days, auth-failure tallies during the red-team excursion, reaction
//! latency distributions — so the reproduction needs one source of
//! truth for telemetry instead of ad-hoc counters scattered per crate.
//! This crate provides it:
//!
//! * a metrics registry ([`ObsHub`]) of named counters, gauges, and
//!   log-scale latency [`Histogram`]s, stamped with **simulated** time;
//! * an append-only structured [`Event`] journal whose byte encoding is
//!   deterministic for a given seed and hashable into a single run
//!   digest ([`ObsHub::journal_digest`]);
//! * a renderable per-run snapshot ([`ObsReport`]).
//!
//! Components hold a private hub by default, so unit tests need no
//! wiring; a deployment replaces it with one shared hub via each
//! component's `attach_obs`, making every counter and journal record
//! land in the same registry. Handles are `Rc`-shared: the simulation
//! is single-threaded and hot paths (per-frame drop accounting) want a
//! cached `Counter` rather than a name lookup.

pub mod event;
pub mod hist;
pub mod report;
pub mod trace;

pub use event::{Event, TimedEvent};
pub use hist::{Histogram, HistogramSummary};
pub use report::ObsReport;
pub use trace::{SpanId, Stage, TraceCtx, TraceId};

use itcrypto::sha256::{Digest, Sha256};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A named monotone counter. Cloning shares the underlying cell, so
/// hot paths cache the handle instead of re-resolving the name.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A named instantaneous value (last write wins).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// A shared histogram handle (see [`Histogram`] for the bucketing).
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Rc<RefCell<Histogram>>);

impl HistogramHandle {
    /// Records one sample (typically microseconds of simulated time).
    pub fn record(&self, value: u64) {
        self.0.borrow_mut().record(value);
    }

    /// Snapshot of count/min/p50/p99/max/mean.
    pub fn summary(&self) -> HistogramSummary {
        self.0.borrow().summary()
    }

    /// Value at quantile `q` in `[0, 1]` (clamped to observed min/max).
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.borrow().quantile(q)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }
}

#[derive(Default)]
struct Inner {
    /// Simulated time in microseconds, advanced by the scheduler.
    now_us: Cell<u64>,
    counters: RefCell<BTreeMap<String, Counter>>,
    gauges: RefCell<BTreeMap<String, Gauge>>,
    histograms: RefCell<BTreeMap<String, HistogramHandle>>,
    journal: RefCell<Vec<TimedEvent>>,
    /// When set, journal appends are echoed to stdout (`--trace`).
    trace: Cell<bool>,
    /// When set, span APIs allocate ids and journal start/end records.
    tracing: Cell<bool>,
    /// Last allocated trace id (ids start at 1).
    last_trace: Cell<u64>,
    /// Last allocated span id (ids start at 1; 0 encodes "root").
    last_span: Cell<u64>,
}

/// The observability hub: metrics registry + event journal, stamped
/// with simulated time. Cheap to clone; clones share all state.
#[derive(Clone, Default)]
pub struct ObsHub {
    inner: Rc<Inner>,
}

impl ObsHub {
    /// Creates an empty hub at simulated time zero.
    pub fn new() -> Self {
        ObsHub::default()
    }

    /// Whether two handles share the same underlying registry.
    pub fn same_hub(&self, other: &ObsHub) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    // ---- simulated clock ----

    /// Advances the simulated clock; called by the scheduler on
    /// dispatch. The clock is clamped to monotonic: a caller handing
    /// in an earlier time (e.g. a component attached from a second,
    /// younger simulation) is journaled as a [`Event::ClockSkew`] and
    /// otherwise ignored, so span durations can never underflow.
    pub fn set_now_us(&self, now_us: u64) {
        let cur = self.inner.now_us.get();
        if now_us < cur {
            self.journal(Event::ClockSkew {
                from_us: cur,
                to_us: now_us,
            });
            return;
        }
        self.inner.now_us.set(now_us);
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.inner.now_us.get()
    }

    // ---- metrics registry ----

    /// Returns the counter registered under `name`, creating it at zero.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.inner.counters.borrow_mut();
        if let Some(c) = reg.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        reg.insert(name.to_string(), c.clone());
        c
    }

    /// Current value of counter `name` (zero if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .borrow()
            .get(name)
            .map_or(0, Counter::get)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.inner
            .counters
            .borrow()
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Returns the gauge registered under `name`, creating it at zero.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = self.inner.gauges.borrow_mut();
        if let Some(g) = reg.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        reg.insert(name.to_string(), g.clone());
        g
    }

    /// Returns the histogram registered under `name`, creating it empty.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut reg = self.inner.histograms.borrow_mut();
        if let Some(h) = reg.get(name) {
            return h.clone();
        }
        let h = HistogramHandle::default();
        reg.insert(name.to_string(), h.clone());
        h
    }

    // ---- event journal ----

    /// Enables/disables echoing journal records to stdout as they land.
    pub fn set_trace(&self, on: bool) {
        self.inner.trace.set(on);
    }

    /// Appends `event` to the journal at the current simulated time.
    pub fn journal(&self, event: Event) {
        let rec = TimedEvent {
            at_us: self.now_us(),
            event,
        };
        if self.inner.trace.get() {
            println!("[{:>12.6}s] {}", rec.at_us as f64 / 1e6, rec.event);
        }
        self.inner.journal.borrow_mut().push(rec);
    }

    /// Number of journal records.
    pub fn journal_len(&self) -> usize {
        self.inner.journal.borrow().len()
    }

    /// A copy of the journal (tests and report rendering).
    pub fn journal_records(&self) -> Vec<TimedEvent> {
        self.inner.journal.borrow().clone()
    }

    /// Number of journal records matching `pred`.
    pub fn journal_count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.inner
            .journal
            .borrow()
            .iter()
            .filter(|r| pred(&r.event))
            .count()
    }

    /// SHA-256 over the canonical byte encoding of every journal
    /// record, in order: the run's identity. Two runs with the same
    /// seed must produce byte-identical digests.
    pub fn journal_digest(&self) -> Digest {
        let mut h = Sha256::new();
        let mut buf = Vec::with_capacity(64);
        for rec in self.inner.journal.borrow().iter() {
            buf.clear();
            rec.encode_into(&mut buf);
            h.update(&buf);
        }
        h.finalize()
    }

    // ---- causal tracing ----

    /// Enables/disables causal tracing. Off by default: untraced runs
    /// journal no span records and keep their historical digests.
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracing.set(on);
    }

    /// Whether span APIs are live.
    pub fn tracing(&self) -> bool {
        self.inner.tracing.get()
    }

    /// Opens a new trace: allocates a trace id, journals the root
    /// span's start at the current simulated time, and returns the
    /// context to propagate. `None` while tracing is disabled.
    pub fn start_root(&self, stage: trace::Stage, node: u32) -> Option<TraceCtx> {
        if !self.tracing() {
            return None;
        }
        let trace = TraceId(self.inner.last_trace.get() + 1);
        self.inner.last_trace.set(trace.0);
        Some(self.open_span(trace, None, stage, node))
    }

    /// Opens a child span under `parent`. `None` when tracing is
    /// disabled or the causal context was lost (`parent` is `None`) —
    /// spans never start mid-air.
    pub fn start_span(
        &self,
        parent: Option<TraceCtx>,
        stage: trace::Stage,
        node: u32,
    ) -> Option<TraceCtx> {
        if !self.tracing() {
            return None;
        }
        let parent = parent?;
        Some(self.open_span(parent.trace, Some(parent.span), stage, node))
    }

    /// Opens and immediately closes a child span: a zero-duration
    /// milestone that still anchors further children (overlay hops,
    /// executes, renders).
    pub fn instant_span(
        &self,
        parent: Option<TraceCtx>,
        stage: trace::Stage,
        node: u32,
    ) -> Option<TraceCtx> {
        let ctx = self.start_span(parent, stage, node);
        self.end_span(ctx);
        ctx
    }

    /// Journals the end of `ctx`'s span at the current simulated time.
    /// No-op for `None` or while tracing is disabled.
    pub fn end_span(&self, ctx: Option<TraceCtx>) {
        if !self.tracing() {
            return;
        }
        if let Some(ctx) = ctx {
            self.journal(Event::SpanEnd {
                trace: ctx.trace,
                span: ctx.span,
            });
        }
    }

    fn open_span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        stage: trace::Stage,
        node: u32,
    ) -> TraceCtx {
        let span = SpanId(self.inner.last_span.get() + 1);
        self.inner.last_span.set(span.0);
        self.journal(Event::SpanStart {
            trace,
            span,
            parent,
            stage,
            node,
        });
        TraceCtx { trace, span }
    }

    // ---- reporting ----

    /// Snapshot of every metric plus the journal digest.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            counters: self
                .inner
                .counters
                .borrow()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .borrow()
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .borrow()
                .iter()
                .filter(|(_, h)| h.count() > 0)
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
            critical_paths: trace::critical_paths(&self.inner.journal.borrow()),
            journal_len: self.journal_len(),
            journal_digest: self.journal_digest().to_hex(),
            journal: self.journal_records(),
        }
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field("now_us", &self.now_us())
            .field("counters", &self.inner.counters.borrow().len())
            .field("journal_len", &self.journal_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_handles() {
        let hub = ObsHub::new();
        let a = hub.counter("net.drops");
        let b = hub.counter("net.drops");
        a.inc();
        b.add(2);
        assert_eq!(hub.counter_value("net.drops"), 3);
        assert_eq!(hub.counter_value("unregistered"), 0);
    }

    #[test]
    fn counter_sum_matches_prefix() {
        let hub = ObsHub::new();
        hub.counter("spines.0.sealed").add(5);
        hub.counter("spines.1.sealed").add(7);
        hub.counter("prime.0.ordered").add(100);
        assert_eq!(hub.counter_sum("spines."), 12);
        assert_eq!(hub.counter_sum("prime."), 100);
        assert_eq!(hub.counter_sum("nothing."), 0);
    }

    #[test]
    fn journal_stamps_simulated_time_and_digests_deterministically() {
        let make = || {
            let hub = ObsHub::new();
            hub.set_now_us(1_000);
            hub.journal(Event::ViewChange {
                replica: 1,
                view: 2,
            });
            hub.set_now_us(2_500);
            hub.journal(Event::AuthFailure { daemon: 3 });
            hub
        };
        let a = make();
        let b = make();
        assert_eq!(a.journal_digest(), b.journal_digest());
        assert_eq!(a.journal_records()[0].at_us, 1_000);
        assert_eq!(a.journal_records()[1].at_us, 2_500);

        // Any difference — order, payload, or timestamp — changes the digest.
        let c = ObsHub::new();
        c.set_now_us(1_000);
        c.journal(Event::ViewChange {
            replica: 1,
            view: 3,
        });
        c.set_now_us(2_500);
        c.journal(Event::AuthFailure { daemon: 3 });
        assert_ne!(a.journal_digest(), c.journal_digest());
    }

    #[test]
    fn journal_count_filters_by_kind() {
        let hub = ObsHub::new();
        hub.journal(Event::ViewChange {
            replica: 0,
            view: 1,
        });
        hub.journal(Event::RecoveryStart { replica: 2 });
        hub.journal(Event::ViewChange {
            replica: 1,
            view: 1,
        });
        assert_eq!(
            hub.journal_count(|e| matches!(e, Event::ViewChange { .. })),
            2
        );
        assert_eq!(
            hub.journal_count(|e| matches!(e, Event::RecoveryEnd { .. })),
            0
        );
    }

    #[test]
    fn report_snapshots_metrics_and_renders() {
        let hub = ObsHub::new();
        hub.counter("a.count").add(4);
        hub.gauge("b.level").set(-2);
        hub.histogram("c.latency_us").record(150);
        hub.journal(Event::PacketDrop {
            node: 1,
            kind: event::DropKind::Loss,
        });
        let r = hub.report();
        assert_eq!(r.counters, vec![("a.count".to_string(), 4)]);
        assert_eq!(r.gauges, vec![("b.level".to_string(), -2)]);
        assert_eq!(r.histograms.len(), 1);
        assert_eq!(r.journal_len, 1);
        let text = r.render();
        assert!(text.contains("a.count"));
        assert!(text.contains("c.latency_us"));
        assert!(text.contains(&r.journal_digest[..16]));
    }

    #[test]
    fn clock_never_moves_backwards() {
        let hub = ObsHub::new();
        hub.set_now_us(5_000);
        hub.set_now_us(1_200); // rejected: journaled, clock kept
        assert_eq!(hub.now_us(), 5_000);
        assert_eq!(
            hub.journal_records(),
            vec![TimedEvent {
                at_us: 5_000,
                event: Event::ClockSkew {
                    from_us: 5_000,
                    to_us: 1_200,
                },
            }]
        );
        hub.set_now_us(6_000); // forward motion still works
        assert_eq!(hub.now_us(), 6_000);
    }

    #[test]
    fn clones_share_hub_identity() {
        let hub = ObsHub::new();
        let clone = hub.clone();
        assert!(hub.same_hub(&clone));
        assert!(!hub.same_hub(&ObsHub::new()));
        clone.counter("x").inc();
        assert_eq!(hub.counter_value("x"), 1);
    }
}
