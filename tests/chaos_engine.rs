//! The chaos engine's own contract (E12 tentpole): within-budget fault
//! schedules never trip the invariant checker, deliberately over-budget
//! schedules provably do, and the E12 soak is deterministic.

use chaos::driver::ChaosDriver;
use chaos::invariants::{CheckerConfig, InvariantChecker};
use chaos::plan::ChaosPlan;
use plc::topology::Scenario;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use proptest::prelude::*;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

use bench::chaos_experiment::{e12_chaos_soak, e12_chaos_soak_with};

fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(2_000),
        checkpoint_interval: 20,
        catchup_timeout: SimDuration::from_millis(300),
    }
}

/// The E12 plant deployment: 6 replicas, fast timing, 100 ms polling,
/// dedup-table transfer armed, warmed up for one second.
fn chaos_deployment(seed: u64) -> (Deployment, PrimeConfig) {
    let mut prime_cfg = PrimeConfig::plant();
    prime_cfg.transfer_dedup = true;
    let cfg = SpireConfig::minimal(prime_cfg, Scenario::PlantSubset);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..prime_cfg.n() {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d.proxy_mut(0)
        .set_poll_interval(SimDuration::from_millis(100));
    d.proxy_mut(0).verbose_updates = true;
    d.run_for(SimDuration::from_secs(1));
    (d, prime_cfg)
}

/// Acceptance: `e12 --seed 42` injects at least five distinct fault
/// kinds and every invariant stays green.
#[test]
fn e12_soak_seed_42_is_green_with_at_least_five_fault_kinds() {
    let run = e12_chaos_soak(42, 1, 12);
    assert!(
        run.distinct_kinds >= 5,
        "expected >= 5 distinct fault kinds, got {} ({:?})",
        run.distinct_kinds,
        run.injected
    );
    assert!(run.total_injected >= 5);
    assert!(
        run.all_green,
        "invariant violations under a within-budget plan: {:?}",
        run.invariants
    );
    assert!(
        !run.reconvergence_us.is_empty(),
        "heals should have exercised reconvergence"
    );
    assert!(run.min_executed > 0);
}

/// The soak is deterministic: the same seed reproduces the same journal
/// digest, event count, and injection counts.
#[test]
fn e12_soak_is_deterministic() {
    let a = e12_chaos_soak(7, 1, 12);
    let b = e12_chaos_soak(7, 1, 12);
    assert_eq!(a.meta.journal_digest, b.meta.journal_digest);
    assert_eq!(a.meta.sim_events, b.meta.sim_events);
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.reconvergence_us, b.reconvergence_us);
}

/// The batched configuration (Merkle-batched dissemination, pipelined
/// sequencing, chunked state transfer) must ride through the same chaos
/// schedule as the stock soak: batches survive crash + restart and
/// catch-up without duplicating or dropping member updates — the
/// agreement and dedup invariants would trip on either. And the batched
/// soak must be exactly as deterministic as the legacy one.
#[test]
fn e12_soak_stays_green_with_batching_and_chunked_transfer() {
    let mut cfg = PrimeConfig::plant().with_batching(16, 4);
    cfg.transfer_chunk = 64;
    let run = e12_chaos_soak_with(42, 1, 12, cfg);
    assert!(
        run.distinct_kinds >= 5,
        "expected >= 5 distinct fault kinds, got {} ({:?})",
        run.distinct_kinds,
        run.injected
    );
    assert!(
        run.all_green,
        "invariant violations with batching armed: {:?}",
        run.invariants
    );
    assert!(run.min_executed > 0);
    let again = e12_chaos_soak_with(42, 1, 12, cfg);
    assert_eq!(run.meta.journal_digest, again.meta.journal_digest);
    assert_eq!(run.meta.sim_events, again.meta.sim_events);
}

/// Negative control: `f + 2` simultaneous crashes (3 of 6 replicas) leave
/// fewer than an ordering quorum alive. With the checker told to treat
/// the system as within budget, the bounded-delay invariant MUST trip —
/// proving the checker detects real liveness loss rather than
/// vacuously passing.
#[test]
fn beyond_budget_crashes_trip_the_bounded_delay_invariant() {
    let (mut d, prime_cfg) = chaos_deployment(42);
    let horizon = SimDuration::from_secs(12);
    let plan = ChaosPlan::beyond_budget_crashes(prime_cfg.f, horizon);
    let mut cfg = CheckerConfig::for_prime(&prime_cfg);
    cfg.assume_within_budget = true;
    let mut checker = InvariantChecker::new(cfg, &d);
    let mut driver = ChaosDriver::new(plan);
    driver.run_soak(&mut d, &mut checker, horizon, SimDuration::from_millis(100));
    let bounded_delay = &checker.reports()[2];
    assert_eq!(bounded_delay.name, "bounded-delay");
    assert!(
        bounded_delay.violations > 0,
        "f + 2 crashes must stall ordering past the delay bound"
    );
}

/// Negative control: an even, never-healing split of the internal network
/// leaves no side with a quorum, so the bounded-delay invariant must trip.
#[test]
fn beyond_budget_partition_trips_the_bounded_delay_invariant() {
    let (mut d, prime_cfg) = chaos_deployment(42);
    let horizon = SimDuration::from_secs(12);
    let plan = ChaosPlan::beyond_budget_partition(prime_cfg.n(), horizon);
    let mut cfg = CheckerConfig::for_prime(&prime_cfg);
    cfg.assume_within_budget = true;
    let mut checker = InvariantChecker::new(cfg, &d);
    let mut driver = ChaosDriver::new(plan);
    driver.run_soak(&mut d, &mut checker, horizon, SimDuration::from_millis(100));
    let bounded_delay = &checker.reports()[2];
    assert!(
        bounded_delay.violations > 0,
        "an even split must stall ordering past the delay bound"
    );
}

/// Runs the full E12 soak (warm-up, fault schedule, heal, quiescence)
/// with the simulator forced to `threads`, returning the journal digest,
/// total event count, and the exact timed sequence of
/// `ChaosInject`/`ChaosHeal` records.
fn chaos_soak_journal(
    seed: u64,
    threads: usize,
) -> (itcrypto::sha256::Digest, u64, Vec<(u64, obs::Event)>) {
    simnet::sim::set_default_threads(threads);
    let (mut d, prime_cfg) = chaos_deployment(seed);
    let horizon = SimDuration::from_secs(10);
    let plan = ChaosPlan::within_budget(seed, prime_cfg.n(), prime_cfg.ordering_quorum(), horizon);
    let mut checker = InvariantChecker::new(CheckerConfig::for_prime(&prime_cfg), &d);
    let mut driver = ChaosDriver::new(plan);
    let step = SimDuration::from_millis(100);
    driver.run_soak(&mut d, &mut checker, horizon, step);
    driver.heal_all(&mut d, &mut checker);
    driver.run_quiesce(&mut d, &mut checker, SimDuration::from_secs(8), step);
    simnet::sim::set_default_threads(1);
    let chaos_seq = d
        .obs
        .journal_records()
        .into_iter()
        .filter(|r| {
            matches!(
                r.event,
                obs::Event::ChaosInject { .. } | obs::Event::ChaosHeal { .. }
            )
        })
        .map(|r| (r.at_us, r.event))
        .collect();
    (d.obs.journal_digest(), d.sim.events_processed(), chaos_seq)
}

/// Parallel-scheduler regression: the chaos soak — whose lossy fault
/// windows force the scheduler to drop in and out of the parallel path —
/// must produce, at 4 threads, the identical journal digest and the
/// identical timed `ChaosInject`/`ChaosHeal` sequence as a
/// single-threaded run.
#[test]
fn e12_soak_at_four_threads_matches_single_threaded_run() {
    let (digest_1, events_1, seq_1) = chaos_soak_journal(42, 1);
    let (digest_4, events_4, seq_4) = chaos_soak_journal(42, 4);
    assert_eq!(
        seq_1, seq_4,
        "chaos injection/heal sequence diverged under parallel execution"
    );
    assert!(!seq_1.is_empty(), "soak injected no faults");
    assert_eq!(digest_1, digest_4, "journal digest diverged at 4 threads");
    assert_eq!(events_1, events_4, "event count diverged at 4 threads");
}

/// Flight-recorder regression: run the E12 soak with HealthSnapshot
/// records armed, heal everything, quiesce — then read the journal back.
/// After the heal the recorder must show the system recovered: every
/// replica's final snapshot has its PO queue drained (the backlog built
/// up during fault windows is gone), is not stuck catching up, and its
/// view has stopped moving; every daemon's final link snapshot shows an
/// empty forwarding queue.
#[test]
fn e12_health_snapshots_show_recovery_after_heal() {
    obs::prof::set_health_every(5);
    let (mut d, prime_cfg) = chaos_deployment(42);
    let horizon = SimDuration::from_secs(10);
    let plan = ChaosPlan::within_budget(42, prime_cfg.n(), prime_cfg.ordering_quorum(), horizon);
    let mut checker = InvariantChecker::new(CheckerConfig::for_prime(&prime_cfg), &d);
    let mut driver = ChaosDriver::new(plan);
    let step = SimDuration::from_millis(100);
    driver.run_soak(&mut d, &mut checker, horizon, step);
    driver.heal_all(&mut d, &mut checker);
    driver.run_quiesce(&mut d, &mut checker, SimDuration::from_secs(8), step);
    obs::prof::set_health_every(0);

    let mut replica_tail: std::collections::BTreeMap<u32, Vec<(u64, u64, u32, bool)>> =
        std::collections::BTreeMap::new();
    let mut link_tail: std::collections::BTreeMap<(u32, u8), u32> =
        std::collections::BTreeMap::new();
    for r in d.obs.journal_records() {
        match r.event {
            obs::Event::ReplicaHealth {
                replica,
                view,
                po_queue,
                catching_up,
                ..
            } => replica_tail.entry(replica).or_default().push((
                r.at_us,
                view,
                po_queue,
                catching_up,
            )),
            obs::Event::LinkHealth {
                daemon,
                link,
                depth,
            } => {
                link_tail.insert((daemon, link), depth);
            }
            _ => {}
        }
    }
    assert_eq!(
        replica_tail.len() as u32,
        prime_cfg.n(),
        "every replica journals health snapshots"
    );
    assert!(!link_tail.is_empty(), "link snapshots were journaled");
    for (replica, snaps) in &replica_tail {
        assert!(snaps.len() >= 2, "replica {replica} snapshotted repeatedly");
        let (_, last_view, last_po, last_catching) = *snaps.last().unwrap();
        let (_, prev_view, _, _) = snaps[snaps.len() - 2];
        assert!(
            !last_catching,
            "replica {replica} still catching up after heal + quiesce"
        );
        assert!(
            last_po <= 2,
            "replica {replica} PO queue not drained after heal: {last_po}"
        );
        assert_eq!(
            last_view, prev_view,
            "replica {replica} view still moving at end of quiescence"
        );
    }
    for ((daemon, link), depth) in &link_tail {
        assert_eq!(
            *depth, 0,
            "daemon {daemon} link {link} forwarding queue not empty after quiesce"
        );
    }
}

proptest! {
    /// Property: for ANY seed, a within-budget plan actually respects the
    /// budget — disruptive fault windows (partition, crash, byz-flip,
    /// recovery, flap) never overlap, partitions only ever isolate a
    /// minority, and every window closes inside the horizon so the
    /// quiescence tail starts from a fully healed network.
    #[test]
    fn within_budget_plans_respect_the_budget(seed in any::<u64>()) {
        use chaos::plan::{Fault, FaultKind, ScheduledFault};
        let n = 6u32;
        let quorum = 4u32;
        let horizon = SimDuration::from_secs(30);
        let plan = ChaosPlan::within_budget(seed, n, quorum, horizon);
        prop_assert!(!plan.faults.is_empty());
        let disruptive: Vec<&ScheduledFault> = plan
            .faults
            .iter()
            .filter(|f| {
                matches!(
                    f.fault.kind(),
                    FaultKind::Partition
                        | FaultKind::NodeCrash
                        | FaultKind::ByzFlip
                        | FaultKind::Recovery
                        | FaultKind::LinkFlap
                )
            })
            .collect();
        for pair in disruptive.windows(2) {
            prop_assert!(
                (pair[0].at + pair[0].duration).as_micros() <= pair[1].at.as_micros(),
                "seed {}: disruptive windows overlap: {:?} vs {:?}",
                seed,
                pair[0],
                pair[1]
            );
        }
        for f in &plan.faults {
            prop_assert!(
                (f.at + f.duration).as_micros() <= horizon.as_micros(),
                "seed {}: window extends past horizon: {:?}",
                seed,
                f
            );
            if let Fault::Partition { isolated } = &f.fault {
                prop_assert!(
                    n - isolated.len() as u32 >= quorum,
                    "seed {}: partition isolates a majority: {:?}",
                    seed,
                    isolated
                );
            }
        }
    }
}

/// Property at the soak level: within-budget schedules keep every
/// invariant green on seeds the plan generator was never tuned against.
/// (A handful of full soaks — each one simulates ~19 seconds of plant
/// operation — backing the 64-case plan-level property above.)
#[test]
fn within_budget_soaks_never_trip_the_checker() {
    for seed in [7u64, 99, 555, 90210] {
        let run = e12_chaos_soak(seed, 1, 10);
        assert!(
            run.all_green,
            "seed {seed} tripped invariants: {:?}",
            run.invariants
        );
    }
}
