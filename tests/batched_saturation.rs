//! Release-only acceptance gates for the batched ordering pipeline: the
//! E11 knee must move at least 5x (past 8000 updates/s) at equal
//! pre-knee tail latency, and the pre-order dissemination cost that
//! saturated the unbatched run must shrink below 15% of charged
//! simulated time at the old knee rate.
//!
//! Gated out of debug builds: a batched ramp through 19200 updates/s is
//! minutes of debug wall-clock. `ci/check.sh` runs this suite in
//! release.
#![cfg(not(debug_assertions))]

use bench::harness::GOLDEN_SEED;
use bench::saturation::{e11_default_rates, e11_saturation, e11_saturation_with, SaturationOpts};

/// The before/after contract: the unbatched ramp knees at its pinned
/// rate, the batched ramp knees at >= 5x that (and >= 8000 updates/s),
/// and at every shared pre-knee rate the batched p99 stays in the same
/// regime as the unbatched one (within 25% — the batch delay may add up
/// to 5 ms to a tail member, never a regime change).
#[test]
fn batched_knee_moves_at_least_5x_at_equal_preknee_p99() {
    let legacy = e11_saturation(GOLDEN_SEED, &e11_default_rates());
    let legacy_knee =
        legacy.steps[legacy.knee_index().expect("unbatched ramp has a knee")].offered_per_s;

    // The full batched ramp is ~90 s of release wall-clock; the reduced
    // ramp keeps the same base step, two shared pre-knee rates, the
    // highest flat rate, and the knee.
    let batched = e11_saturation_with(
        GOLDEN_SEED,
        &[400, 800, 1600, 9600, 19200],
        SaturationOpts::batched(),
    );
    assert!(
        batched.is_flat_then_knee(),
        "batched ramp keeps the paper's shape"
    );
    let batched_knee =
        batched.steps[batched.knee_index().expect("batched ramp has a knee")].offered_per_s;

    assert!(
        batched_knee >= 5 * legacy_knee && batched_knee >= 8000,
        "knee moved {legacy_knee} -> {batched_knee}, below the 5x / 8000-per-s bar"
    );
    for b in &batched.steps {
        if b.offered_per_s >= legacy_knee {
            continue;
        }
        let l = legacy
            .steps
            .iter()
            .find(|s| s.offered_per_s == b.offered_per_s)
            .expect("shared pre-knee rate");
        assert!(
            4 * b.p99_us <= 5 * l.p99_us.max(1),
            "batched p99 {} vs unbatched {} at {}/s: pre-knee tail regressed",
            b.p99_us,
            l.p99_us,
            b.offered_per_s
        );
    }
}

/// At the unbatched knee rate (1600 updates/s), pre-order dissemination
/// — per-update PoRequests plus every batch_* stack — must charge less
/// than 15% of the step's simulated time with batching on. The issue's
/// baseline: `prime;preorder;po_request` alone was 42.8% unbatched.
#[test]
fn batched_dissemination_cost_under_15_percent_at_old_knee() {
    obs::prof::set_enabled(true);
    let run = e11_saturation_with(GOLDEN_SEED, &[1600], SaturationOpts::batched());
    obs::prof::set_enabled(false);
    let _ = obs::prof::take();

    let prof = run.steps[0].prof.as_ref().expect("profiling was enabled");
    let total = prof.total_time_us().max(1);
    let dissemination: u64 = prof
        .rows()
        .filter(|(stack, _)| {
            stack.starts_with("prime;preorder;po_request")
                || stack.starts_with("prime;preorder;batch_")
        })
        .map(|(_, cost)| cost.time_us)
        .sum();
    assert!(
        dissemination * 100 < total * 15,
        "dissemination charged {dissemination} of {total} us ({}%), expected < 15%",
        dissemination * 100 / total
    );
}
