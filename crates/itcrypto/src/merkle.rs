//! Merkle trees over SHA-256, used for SCADA application-state digests and
//! Prime checkpoint certificates: a replica can prove a single field-device
//! record is part of an agreed state digest without shipping the whole state.

use crate::sha256::{sha256_concat, Digest};

/// Domain-separation prefixes so leaves can never be confused with interior
/// nodes (second-preimage hardening).
const LEAF_PREFIX: &[u8] = b"\x00leaf";
const NODE_PREFIX: &[u8] = b"\x01node";

fn hash_leaf(data: &[u8]) -> Digest {
    sha256_concat(&[LEAF_PREFIX, data])
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[NODE_PREFIX, left.as_bytes(), right.as_bytes()])
}

/// A Merkle tree built over an ordered list of byte-string leaves.
///
/// An odd node at the end of a level is promoted (Bitcoin-style duplication
/// is avoided because it admits trivial collisions between leaf lists).
///
/// # Examples
///
/// ```
/// use itcrypto::merkle::MerkleTree;
///
/// let tree = MerkleTree::from_leaves([b"b10-1:open".as_slice(), b"b57:closed", b"b56:open"]);
/// let proof = tree.prove(1).expect("index in range");
/// assert!(MerkleTree::verify(tree.root(), b"b57:closed", &proof));
/// assert!(!MerkleTree::verify(tree.root(), b"b57:open", &proof));
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] is the leaf level; the last level holds the single root.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: sibling hashes from leaf to root with direction bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proof {
    /// Leaf index this proof was generated for.
    pub index: usize,
    /// `(sibling, sibling_is_left)` from bottom to top. Levels where the node
    /// was promoted without a sibling are skipped.
    pub path: Vec<(Digest, bool)>,
}

impl MerkleTree {
    /// Builds a tree from leaf byte strings.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty; an empty state has no meaningful digest
    /// and callers use [`Digest::ZERO`] for that case.
    pub fn from_leaves<I, B>(leaves: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let leaf_hashes: Vec<Digest> = leaves.into_iter().map(|l| hash_leaf(l.as_ref())).collect();
        assert!(
            !leaf_hashes.is_empty(),
            "merkle tree requires at least one leaf"
        );
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(hash_node(l, r)),
                    [odd] => next.push(*odd), // promote
                    _ => unreachable!("chunks(2) yields 1 or 2 items"),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of range.
    pub fn prove(&self, index: usize) -> Option<Proof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) {
                idx + 1
            } else {
                idx - 1
            };
            if sibling < level.len() {
                path.push((level[sibling], sibling < idx));
            }
            idx /= 2;
        }
        Some(Proof { index, path })
    }

    /// Verifies that `leaf_data` is included under `root` via `proof`.
    pub fn verify(root: Digest, leaf_data: &[u8], proof: &Proof) -> bool {
        proof.fold_root(leaf_data) == root
    }
}

impl Proof {
    /// Folds `leaf_data` up the proof path and returns the root the proof
    /// commits to. Callers that authenticate roots by signature (Prime's
    /// batched pre-ordering) fold first, then check the signature over
    /// the folded root — a corrupted leaf or path yields a different
    /// root, so the signature check fails exactly as it would have for
    /// the full leaf set.
    pub fn fold_root(&self, leaf_data: &[u8]) -> Digest {
        let mut acc = hash_leaf(leaf_data);
        for (sibling, sibling_is_left) in &self.path {
            acc = if *sibling_is_left {
                hash_node(sibling, &acc)
            } else {
                hash_node(&acc, sibling)
            };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_leaves([b"only".as_slice()]);
        assert_eq!(t.root(), hash_leaf(b"only"));
        assert_eq!(t.leaf_count(), 1);
        let p = t.prove(0).expect("in range");
        assert!(p.path.is_empty());
        assert!(MerkleTree::verify(t.root(), b"only", &p));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            for (i, l) in ls.iter().enumerate() {
                let p = t.prove(i).expect("in range");
                assert!(MerkleTree::verify(t.root(), l, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.prove(3).expect("in range");
        assert!(!MerkleTree::verify(t.root(), b"leaf-4", &p));
    }

    #[test]
    fn proof_for_wrong_index_fails() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.prove(3).expect("in range");
        assert!(!MerkleTree::verify(t.root(), b"leaf-2", &p));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let t = MerkleTree::from_leaves(leaves(4));
        assert!(t.prove(4).is_none());
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::from_leaves(leaves(5));
        let mut ls = leaves(5);
        ls[2] = b"tampered".to_vec();
        let b = MerkleTree::from_leaves(&ls);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn order_matters() {
        let a = MerkleTree::from_leaves([b"x".as_slice(), b"y"]);
        let b = MerkleTree::from_leaves([b"y".as_slice(), b"x"]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A tree over [h] where h happens to equal an interior encoding must
        // not collide with the two-leaf tree, thanks to prefixes.
        let two = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let concat = [
            NODE_PREFIX,
            hash_leaf(b"a").as_bytes(),
            hash_leaf(b"b").as_bytes(),
        ]
        .concat();
        let one = MerkleTree::from_leaves([concat.as_slice()]);
        assert_ne!(two.root(), one.root());
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        let _ = MerkleTree::from_leaves(Vec::<Vec<u8>>::new());
    }
}
