//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! handful of `bytes` APIs it relies on are reimplemented here: a cheaply
//! cloneable immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]), and the big-endian put-methods of the [`BufMut`] trait.
//! Semantics match the real crate for this subset; zero-copy slicing is
//! not reproduced (clones share the same allocation, slices copy).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice (copied; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// Returns a copy of the subrange as owned `Bytes`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(self.data[range].to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: Arc::new(v.into_bytes()),
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: Arc::new(v.as_bytes().to_vec()),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

/// Renders byte buffers as `b"..."` with escapes, like the real crate.
fn fmt_bytes_debug(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes_debug(self.as_ref(), f)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with capacity `cap`.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes_debug(self.as_ref(), f)
    }
}

/// Write access to a growable buffer: the big-endian integer and slice
/// appends the workspace's wire codec uses.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_compare() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b, Bytes::from_static(&[1, 2, 3]));
        assert_eq!(b.slice(1..3).as_ref(), &[2, 3]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn bytes_mut_builds_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x04050607);
        m.put_u64(0x08090a0b0c0d0e0f);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            b.as_ref(),
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, b'x', b'y']
        );
    }

    #[test]
    fn debug_escapes_nonprintable() {
        let b = Bytes::from(vec![b'h', b'i', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"hi\\x00\"");
    }
}
