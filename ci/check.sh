#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "All checks passed."
