//! The MultiCompiler variant and exploit model.

use itcrypto::sha256::{sha256_concat, Digest};

/// A compiled variant of a system binary. Two variants from different
/// seeds have different layouts; an exploit binds to one layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Variant {
    /// The compile-time randomization seed.
    pub seed: u64,
    /// The resulting attack-surface layout fingerprint.
    pub layout: Digest,
}

/// Build-time hardening choices the red-team debrief called out (§VI-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BinaryHardening {
    /// Debug symbols stripped from the executable. The red team patched
    /// the Spines binary faster *because* symbols were present.
    pub stripped_symbols: bool,
    /// Options compiled into the program instead of exposed via
    /// command-line parameters and a configuration file.
    pub compiled_in_config: bool,
}

impl BinaryHardening {
    /// The deployment as fielded in 2017: not stripped, options visible —
    /// the configuration the team said they would improve.
    pub fn deployed_2017() -> Self {
        BinaryHardening {
            stripped_symbols: false,
            compiled_in_config: false,
        }
    }

    /// The recommended configuration after lessons learned.
    pub fn recommended() -> Self {
        BinaryHardening {
            stripped_symbols: true,
            compiled_in_config: true,
        }
    }

    /// Multiplier on the attacker's reverse-engineering effort. Calibrated
    /// roughly: each measure individually doubles the work.
    pub fn effort_multiplier(&self) -> f64 {
        let mut m = 1.0;
        if self.stripped_symbols {
            m *= 2.0;
        }
        if self.compiled_in_config {
            m *= 2.0;
        }
        m
    }
}

/// The MultiCompiler: seed in, diversified variant out.
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiCompiler;

impl MultiCompiler {
    /// "Compiles" a variant from a seed. Deterministic: the same seed
    /// always yields the same layout (build reproducibility), different
    /// seeds yield different layouts.
    pub fn compile(seed: u64) -> Variant {
        let layout = sha256_concat(&[b"multicompiler-layout", &seed.to_be_bytes()]);
        Variant { seed, layout }
    }

    /// The undiversified baseline: every replica runs the identical build.
    pub fn identical() -> Variant {
        Self::compile(0)
    }
}

/// An exploit crafted against a specific layout.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Exploit {
    /// The layout this exploit was developed against.
    pub target_layout: Digest,
    /// Attacker hours spent crafting it.
    pub crafting_hours: f64,
}

impl Exploit {
    /// Crafts an exploit against an observed variant. `base_hours` is the
    /// attacker's skill level (hours to exploit an unhardened, known
    /// layout); hardening multiplies it.
    pub fn craft(target: &Variant, base_hours: f64, hardening: BinaryHardening) -> Self {
        Exploit {
            target_layout: target.layout,
            crafting_hours: base_hours * hardening.effort_multiplier(),
        }
    }

    /// Whether this exploit compromises a replica running `variant`.
    /// Layout must match exactly — the MultiCompiler guarantee that "it is
    /// extremely unlikely that the same exploit will succeed in
    /// compromising any two distinct variants" (§II).
    pub fn works_against(&self, variant: &Variant) -> bool {
        self.target_layout == variant.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_variant_different_seed_different() {
        assert_eq!(MultiCompiler::compile(7), MultiCompiler::compile(7));
        assert_ne!(
            MultiCompiler::compile(7).layout,
            MultiCompiler::compile(8).layout
        );
    }

    #[test]
    fn exploit_binds_to_layout() {
        let a = MultiCompiler::compile(1);
        let b = MultiCompiler::compile(2);
        let exploit = Exploit::craft(&a, 8.0, BinaryHardening::deployed_2017());
        assert!(exploit.works_against(&a));
        assert!(!exploit.works_against(&b));
    }

    #[test]
    fn identical_replicas_fall_to_one_exploit() {
        // The no-diversity baseline: one exploit, total compromise.
        let replicas: Vec<Variant> = (0..4).map(|_| MultiCompiler::identical()).collect();
        let exploit = Exploit::craft(&replicas[0], 8.0, BinaryHardening::deployed_2017());
        assert!(replicas.iter().all(|v| exploit.works_against(v)));
    }

    #[test]
    fn diversified_replicas_need_per_replica_exploits() {
        let replicas: Vec<Variant> = (1..=4).map(MultiCompiler::compile).collect();
        let exploit = Exploit::craft(&replicas[0], 8.0, BinaryHardening::deployed_2017());
        let compromised = replicas.iter().filter(|v| exploit.works_against(v)).count();
        assert_eq!(compromised, 1);
    }

    #[test]
    fn hardening_multiplies_effort() {
        let v = MultiCompiler::compile(1);
        let easy = Exploit::craft(&v, 8.0, BinaryHardening::deployed_2017());
        let hard = Exploit::craft(&v, 8.0, BinaryHardening::recommended());
        assert_eq!(easy.crafting_hours, 8.0);
        assert_eq!(hard.crafting_hours, 32.0);
        let partial = BinaryHardening {
            stripped_symbols: true,
            compiled_in_config: false,
        };
        assert_eq!(Exploit::craft(&v, 8.0, partial).crafting_hours, 16.0);
    }
}
