//! The red-team framework: the attack repertoire §IV-B reports, a
//! scripted attacker process, the Figure 3 laboratory (enterprise network
//! plus two parallel operations networks), and the staged
//! compromised-replica excursion.
//!
//! Everything here is *simulation against the reproduction's own targets*;
//! the attacks exist so the experiments can demonstrate which defenses
//! stop them, exactly as the exercise did:
//!
//! * [`attacker`] — the attacker node: port scans, ARP poisoning,
//!   IP-spoofed injections, DoS bursts, unauthenticated Modbus
//!   dump/upload, commercial status/command forgery, man-in-the-middle
//!   relaying.
//! * [`lab`] — the commercial side of Figure 3 (enterprise network trunked
//!   to the commercial operations network) with MANA taps.
//! * [`excursion`] — §IV-B's third-day excursion: gradually increasing
//!   control of one Spire replica, from user-level daemon tampering to
//!   root with source access.
//! * [`report`] — structured attack outcomes for EXPERIMENTS.md tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod excursion;
pub mod lab;
pub mod report;

pub use attacker::{AttackStep, Attacker};
pub use excursion::{run_excursion, ExcursionReport, Stage};
pub use lab::CommercialLab;
pub use report::{AttackOutcome, AttackReport};
