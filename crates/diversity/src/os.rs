//! Operating-system hardening profiles (§III-B, §IV-B).
//!
//! "The red team then tried to gain root-level access through known
//! exploits of a shared memory vulnerability in the Linux kernel
//! (dirtycow) and the SSH daemon, but neither was successful due to the
//! use of the latest version of CentOS that had removed those
//! vulnerabilities."

/// Classes of known exploits the red team attempted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CveClass {
    /// The dirtycow copy-on-write race (CVE-2016-5195 class).
    DirtyCow,
    /// An SSH daemon privilege-escalation class.
    SshDaemon,
    /// Exploitation of a preinstalled desktop service.
    DesktopService,
}

/// An OS installation profile.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OsProfile {
    /// Ubuntu desktop with the "open philosophy by default": many
    /// preinstalled services, older kernel — the environment the system
    /// components were originally developed on.
    UbuntuDesktop,
    /// The latest minimal CentOS server the team ported everything to:
    /// "essentially closed by default", patched kernel and sshd.
    CentosMinimal,
}

impl OsProfile {
    /// Whether a privilege-escalation attempt of the given class succeeds.
    pub fn vulnerable_to(self, cve: CveClass) -> bool {
        match self {
            OsProfile::UbuntuDesktop => true,
            OsProfile::CentosMinimal => match cve {
                CveClass::DirtyCow | CveClass::SshDaemon => false,
                // There are no preinstalled desktop services to attack.
                CveClass::DesktopService => false,
            },
        }
    }

    /// Number of network-facing services running by default (scanning
    /// surface MANA and port scans observe).
    pub fn default_services(self) -> u32 {
        match self {
            OsProfile::UbuntuDesktop => 9,
            OsProfile::CentosMinimal => 1, // sshd only
        }
    }

    /// The porting cost the paper paid: components built for Ubuntu
    /// desktop needed "considerable work" on minimal CentOS. Returns the
    /// components requiring porting.
    pub fn porting_work(self) -> &'static [&'static str] {
        match self {
            OsProfile::UbuntuDesktop => &[],
            OsProfile::CentosMinimal => &["HMI graphics packages", "PLC communication libraries"],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubuntu_falls_centos_stands() {
        for cve in [
            CveClass::DirtyCow,
            CveClass::SshDaemon,
            CveClass::DesktopService,
        ] {
            assert!(OsProfile::UbuntuDesktop.vulnerable_to(cve), "{cve:?}");
            assert!(!OsProfile::CentosMinimal.vulnerable_to(cve), "{cve:?}");
        }
    }

    #[test]
    fn minimal_profile_smaller_surface() {
        assert!(
            OsProfile::CentosMinimal.default_services()
                < OsProfile::UbuntuDesktop.default_services()
        );
    }

    #[test]
    fn porting_work_documented() {
        assert!(OsProfile::CentosMinimal.porting_work().len() == 2);
        assert!(OsProfile::UbuntuDesktop.porting_work().is_empty());
    }
}
