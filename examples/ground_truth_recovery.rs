//! The §III-A cyber-physical recovery property: after an assumption
//! breach that no BFT system can survive, Spire rebuilds its state from
//! the field devices — and the historian shows why *history* cannot come
//! back the same way.
//!
//! Run with: `cargo run --release --example ground_truth_recovery`

use bench::recovery_experiments::e6_ground_truth;

fn main() {
    println!("== Assumption breach: 5 of 6 replicas crash and lose state ==\n");
    let run = e6_ground_truth(2019);
    println!(
        "replicas with intact state: {} (need {} = f+1 to trust replica recovery)",
        run.intact, run.needed_for_replica_recovery
    );
    println!(
        "replica-based recovery possible: {}  ← a generic BFT system stops here",
        run.replica_recovery_possible
    );
    println!();
    println!("polling the field devices through their proxies instead...");
    println!(
        "rebuilt master state matches physical reality: {}",
        run.field_rebuild_correct
    );
    println!();
    println!("the historian is the contrast case (§III-A):");
    println!(
        "  records lost in the breach:      {}",
        run.historian_records_lost
    );
    println!(
        "  records recoverable from field:  {} (the present snapshot only)",
        run.historian_records_recovered
    );
}
