//! Windowed flow-metadata feature extraction.

use std::collections::BTreeSet;

use simnet::capture::{CapturedProto, PacketRecord};
use simnet::packet::{ArpOp, TransportKind};
use simnet::time::{SimDuration, SimTime};

/// Number of features per window.
pub const FEATURE_COUNT: usize = 10;

/// Human-readable feature names (indexes match [`FeatureVector::values`]).
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "packet_count",
    "byte_count",
    "unique_sources",
    "unique_dst_ports",
    "syn_count",
    "arp_request_count",
    "arp_reply_count",
    "broadcast_count",
    "mean_packet_size",
    "unique_flows",
];

/// One window's feature vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeatureVector {
    /// Start of the window.
    pub window_start: SimTime,
    /// The feature values, indexed per [`FEATURE_NAMES`].
    pub values: [f64; FEATURE_COUNT],
}

impl FeatureVector {
    /// Computes features over the records of one window.
    pub fn from_records(window_start: SimTime, records: &[PacketRecord]) -> Self {
        let mut values = [0.0f64; FEATURE_COUNT];
        let mut sources = BTreeSet::new();
        let mut dst_ports = BTreeSet::new();
        let mut flows = BTreeSet::new();
        let mut bytes: u64 = 0;
        for r in records {
            bytes += r.size as u64;
            sources.insert(r.src_ip);
            match r.proto {
                CapturedProto::Ip(kind) => {
                    dst_ports.insert(r.dst_port);
                    flows.insert((r.src_ip, r.dst_ip, r.dst_port));
                    if kind == TransportKind::TcpSyn {
                        values[4] += 1.0;
                    }
                }
                CapturedProto::Arp(ArpOp::Request) => values[5] += 1.0,
                CapturedProto::Arp(ArpOp::Reply) => values[6] += 1.0,
            }
            if r.dst_mac.is_broadcast() {
                values[7] += 1.0;
            }
        }
        values[0] = records.len() as f64;
        values[1] = bytes as f64;
        values[2] = sources.len() as f64;
        values[3] = dst_ports.len() as f64;
        values[8] = if records.is_empty() {
            0.0
        } else {
            bytes as f64 / records.len() as f64
        };
        values[9] = flows.len() as f64;
        FeatureVector {
            window_start,
            values,
        }
    }
}

/// Splits a record stream into fixed-length windows and extracts features.
#[derive(Debug)]
pub struct WindowExtractor {
    window: SimDuration,
    current_start: SimTime,
    buffer: Vec<PacketRecord>,
}

impl WindowExtractor {
    /// Creates an extractor with the given window length.
    pub fn new(window: SimDuration) -> Self {
        WindowExtractor {
            window,
            current_start: SimTime::ZERO,
            buffer: Vec::new(),
        }
    }

    /// Feeds records (must be time-ordered, as capture taps produce them);
    /// returns feature vectors for every window that closed.
    pub fn push(&mut self, records: impl IntoIterator<Item = PacketRecord>) -> Vec<FeatureVector> {
        let mut out = Vec::new();
        for r in records {
            while r.time >= self.current_start + self.window {
                out.push(FeatureVector::from_records(
                    self.current_start,
                    &self.buffer,
                ));
                self.buffer.clear();
                self.current_start += self.window;
            }
            self.buffer.push(r);
        }
        out
    }

    /// Closes out all windows up to `now` (emitting empty windows for idle
    /// periods — silence is also a signal).
    pub fn flush_until(&mut self, now: SimTime) -> Vec<FeatureVector> {
        let mut out = Vec::new();
        while now >= self.current_start + self.window {
            out.push(FeatureVector::from_records(
                self.current_start,
                &self.buffer,
            ));
            self.buffer.clear();
            self.current_start += self.window;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::capture::PacketRecord;
    use simnet::packet::{ArpBody, ArpOp, EtherPayload, Frame, Packet};
    use simnet::switch::SwitchId;
    use simnet::types::{IpAddr, MacAddr, NodeId, Port};

    fn data_record(t: u64, src: u8, dport: u16, size_pad: usize) -> PacketRecord {
        let pkt = Packet::udp(
            IpAddr::new(10, 0, 0, src),
            IpAddr::new(10, 0, 0, 99),
            Port(1000),
            Port(dport),
            bytes::Bytes::from(vec![0u8; size_pad]),
        );
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(src as u32), 0),
            dst_mac: MacAddr::derived(NodeId(99), 0),
            payload: EtherPayload::Ip(pkt),
        };
        PacketRecord::from_frame(SimTime(t), SwitchId(0), &frame)
    }

    fn arp_record(t: u64, op: ArpOp) -> PacketRecord {
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(1), 0),
            dst_mac: MacAddr::BROADCAST,
            payload: EtherPayload::Arp(ArpBody {
                op,
                sender_ip: IpAddr::new(10, 0, 0, 1),
                sender_mac: MacAddr::derived(NodeId(1), 0),
                target_ip: IpAddr::new(10, 0, 0, 2),
            }),
        };
        PacketRecord::from_frame(SimTime(t), SwitchId(0), &frame)
    }

    #[test]
    fn feature_values_computed() {
        let records = vec![
            data_record(0, 1, 502, 10),
            data_record(10, 2, 502, 10),
            data_record(20, 1, 8100, 30),
            arp_record(30, ArpOp::Request),
            arp_record(40, ArpOp::Reply),
        ];
        let fv = FeatureVector::from_records(SimTime(0), &records);
        assert_eq!(fv.values[0], 5.0); // packets
        assert_eq!(fv.values[2], 2.0); // unique sources (10.0.0.1, 10.0.0.2)
        assert_eq!(fv.values[3], 2.0); // ports 502, 8100
        assert_eq!(fv.values[5], 1.0); // arp requests
        assert_eq!(fv.values[6], 1.0); // arp replies
        assert_eq!(fv.values[7], 2.0); // broadcasts (both ARP frames)
        assert_eq!(fv.values[9], 3.0); // unique flows
        assert!(fv.values[8] > 0.0);
    }

    #[test]
    fn extractor_windows_by_time() {
        let mut ex = WindowExtractor::new(SimDuration::from_millis(1));
        // Records at 0.2ms, 0.8ms, 1.5ms, 3.2ms.
        let out = ex.push([
            data_record(200, 1, 502, 0),
            data_record(800, 1, 502, 0),
            data_record(1_500, 1, 502, 0),
            data_record(3_200, 1, 502, 0),
        ]);
        // Windows [0,1ms) and [1,2ms) and [2,3ms) closed.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].values[0], 2.0);
        assert_eq!(out[1].values[0], 1.0);
        assert_eq!(out[2].values[0], 0.0, "idle window emitted as zeros");
        let flushed = ex.flush_until(SimTime(5_000));
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].values[0], 1.0);
    }

    #[test]
    fn empty_window_features_are_zero() {
        let fv = FeatureVector::from_records(SimTime(0), &[]);
        assert!(fv.values.iter().all(|&v| v == 0.0));
    }
}
