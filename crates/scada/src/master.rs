//! The replicated SCADA master as a [`prime::Application`].

use std::collections::VecDeque;

use itcrypto::sha256::Digest;
use prime::application::Application;
use prime::types::Update;
use simnet::wire::Wire;

use crate::state::ScadaState;
use crate::updates::ScadaUpdate;

/// Side effects the master requests after executing ordered updates. The
/// hosting replica process sends these over the external Spines network;
/// proxies and HMIs act only on `f+1` matching copies from distinct
/// replicas, so a compromised master cannot forge them alone.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MasterAction {
    /// Drive a field breaker through the PLC proxy.
    PlcCommand {
        /// Scenario tag.
        scenario: String,
        /// Breaker index.
        breaker: u16,
        /// Desired state.
        close: bool,
        /// Execution sequence that produced this command (for proxy
        /// deduplication across replicas).
        exec_seq: u64,
    },
    /// Refresh an HMI with current scenario state.
    HmiFrame {
        /// Scenario tag.
        scenario: String,
        /// Breaker positions.
        positions: Vec<bool>,
        /// Currents.
        currents: Vec<u16>,
        /// Execution sequence that produced this frame.
        exec_seq: u64,
    },
}

/// The SCADA master application hosted by each Prime replica.
#[derive(Clone, Debug, Default)]
pub struct ScadaApp {
    state: ScadaState,
    actions: VecDeque<MasterAction>,
    /// Updates whose payload failed to parse (faulty client or corruption).
    pub malformed_updates: u64,
}

impl ScadaApp {
    /// An empty master.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the state.
    pub fn state(&self) -> &ScadaState {
        &self.state
    }

    /// Drains pending actions (the replica owner sends them).
    pub fn take_actions(&mut self) -> Vec<MasterAction> {
        std::mem::take(&mut self.actions).into()
    }

    /// Applies a ground-truth rebaseline directly (used by the §III-A
    /// recovery path *before* updates resume flowing; normal operation
    /// orders a [`ScadaUpdate::FieldRebaseline`] instead).
    pub fn force_rebaseline(&mut self, scenario: &str, positions: Vec<bool>) {
        self.state.apply(&ScadaUpdate::FieldRebaseline {
            scenario: scenario.to_string(),
            positions,
        });
    }
}

impl Application for ScadaApp {
    fn execute(&mut self, update: &Update, exec_seq: u64) {
        let Ok(scada_update) = ScadaUpdate::from_wire(&update.payload) else {
            self.malformed_updates += 1;
            return;
        };
        let changed = self.state.apply(&scada_update);
        match scada_update {
            ScadaUpdate::HmiCommand {
                scenario,
                breaker,
                close,
            } => {
                self.actions.push_back(MasterAction::PlcCommand {
                    scenario,
                    breaker,
                    close,
                    exec_seq,
                });
            }
            ScadaUpdate::RtuStatus { scenario, .. } if changed => {
                let s = self.state.scenario(&scenario).expect("just applied");
                self.actions.push_back(MasterAction::HmiFrame {
                    scenario,
                    positions: s.positions.clone(),
                    currents: s.currents.clone(),
                    exec_seq,
                });
            }
            _ => {}
        }
    }

    fn digest(&self) -> Digest {
        self.state.digest()
    }

    fn snapshot(&self) -> Vec<u8> {
        self.state.snapshot()
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.state = ScadaState::restore(snapshot);
        self.actions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn prime_update(seq: u64, u: &ScadaUpdate) -> Update {
        Update::new(1, seq, u.to_wire())
    }

    #[test]
    fn hmi_command_emits_plc_action() {
        let mut app = ScadaApp::new();
        let cmd = ScadaUpdate::HmiCommand {
            scenario: "jhu".into(),
            breaker: 1,
            close: false,
        };
        app.execute(&prime_update(1, &cmd), 1);
        let actions = app.take_actions();
        assert_eq!(
            actions,
            vec![MasterAction::PlcCommand {
                scenario: "jhu".into(),
                breaker: 1,
                close: false,
                exec_seq: 1
            }]
        );
        assert!(app.take_actions().is_empty(), "actions drained");
    }

    #[test]
    fn rtu_status_emits_hmi_frame_on_change_only() {
        let mut app = ScadaApp::new();
        let st = ScadaUpdate::RtuStatus {
            scenario: "plant".into(),
            poll_seq: 1,
            positions: vec![true, true, false],
            currents: vec![100, 100, 0],
        };
        app.execute(&prime_update(1, &st), 1);
        assert_eq!(app.take_actions().len(), 1);
        // Identical positions in a newer poll: no frame.
        let st2 = ScadaUpdate::RtuStatus {
            scenario: "plant".into(),
            poll_seq: 2,
            positions: vec![true, true, false],
            currents: vec![100, 100, 0],
        };
        app.execute(&prime_update(2, &st2), 2);
        assert!(app.take_actions().is_empty());
    }

    #[test]
    fn malformed_payload_counted_not_panicking() {
        let mut app = ScadaApp::new();
        app.execute(&Update::new(1, 1, Bytes::from_static(b"\xde\xad")), 1);
        assert_eq!(app.malformed_updates, 1);
        assert_eq!(app.state().executed, 0);
    }

    #[test]
    fn snapshot_install_roundtrip_matches_digest() {
        let mut a = ScadaApp::new();
        let st = ScadaUpdate::RtuStatus {
            scenario: "jhu".into(),
            poll_seq: 7,
            positions: vec![true; 7],
            currents: vec![100; 7],
        };
        a.execute(&prime_update(1, &st), 1);
        let snap = a.snapshot();
        let mut b = ScadaApp::new();
        b.install_snapshot(&snap);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(
            b.state().scenario("jhu").expect("scenario").positions,
            vec![true; 7]
        );
    }

    #[test]
    fn force_rebaseline_changes_digest() {
        let mut app = ScadaApp::new();
        let before = app.digest();
        app.force_rebaseline("plant", vec![true, false, true]);
        assert_ne!(app.digest(), before);
        assert_eq!(
            app.state().scenario("plant").expect("scenario").positions,
            vec![true, false, true]
        );
    }
}
