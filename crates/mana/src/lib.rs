//! MANA — the Machine-learning Assisted Network Analyzer (§II, §III-C).
//!
//! MANA "translates network packet capture into data inputs for machine
//! learning evaluation and alerts users in near real-time of any highly
//! correlated anomalous or malicious activity". Its operational
//! constraints, reproduced here, drive the design:
//!
//! * **Passive and out-of-band**: input is the metadata stream from
//!   [`simnet`] capture taps (span ports); MANA never injects traffic.
//! * **No protocol knowledge, no plaintext**: SCADA protocols are
//!   proprietary and (in Spire) encrypted, so features are computed from
//!   flow metadata only — counts, sizes, fan-out, ARP activity
//!   ([`features`]).
//! * **Anomaly-based**: per-feature Gaussian baselines with a
//!   Mahalanobis-style combined score ([`model`]) plus a k-means detector
//!   over the baseline's traffic modes ([`kmeans`]), trained on a
//!   baseline capture (24 h at the red-team exercise, 12 h at the plant).
//! * **Operator-facing**: alerts are correlated into incidents with a
//!   human-readable cause ([`ids`]) and summarized on a situational-
//!   awareness board "tailored for power plant engineers" ([`board`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod features;
pub mod ids;
pub mod kmeans;
pub mod model;

pub use board::Board;
pub use features::{FeatureVector, WindowExtractor, FEATURE_COUNT, FEATURE_NAMES};
pub use ids::{Alert, AlertKind, ManaInstance};
pub use kmeans::{roc_curve, KMeansModel, RocPoint};
pub use model::GaussianModel;
