//! Builds a full Spire deployment on a [`simnet::Simulation`] — Figure 2,
//! parameterized by the [`HardeningProfile`] so the E10 ablation can
//! weaken it one switch at a time.

use std::collections::BTreeMap;

use diversity::os::OsProfile;
use plc::emulator::PlcEmulator;
use simnet::capture::TapId;
use simnet::firewall::Firewall;
use simnet::link::LinkSpec;
use simnet::sim::{InterfaceSpec, NodeSpec, Simulation};
use simnet::switch::{SwitchId, SwitchMode};
use simnet::time::{SimDuration, SimTime};
use simnet::types::{MacAddr, NodeId};

use crate::config::{SpireConfig, EXTERNAL_SPINES_PORT, INTERNAL_SPINES_PORT};
use crate::hardening::HardeningProfile;
use crate::hmi_host::HmiHost;
use crate::proxy::{PlcProxy, PROXY_MODBUS_PORT};
use crate::replica_host::ReplicaHost;
use crate::site::SurvivalMode;

/// Number of spare switch ports kept for attacker attachment.
const SPARE_PORTS: usize = 4;

/// A built Spire deployment.
pub struct Deployment {
    /// The simulation hosting everything.
    pub sim: Simulation,
    /// The shared observability hub: every host's metrics and journal
    /// records land here under deployment-wide names.
    pub obs: obs::ObsHub,
    /// The configuration it was built from.
    pub cfg: SpireConfig,
    /// The hardening profile in force.
    pub hardening: HardeningProfile,
    /// The external (operations) switch.
    pub external_switch: SwitchId,
    /// The internal switch (present only when `isolated_internal`).
    pub internal_switch: Option<SwitchId>,
    /// Replica host nodes, by replica id.
    pub replica_nodes: Vec<NodeId>,
    /// Proxy nodes, by proxy index.
    pub proxy_nodes: Vec<NodeId>,
    /// PLC nodes, by proxy index.
    pub plc_nodes: Vec<NodeId>,
    /// HMI nodes, by HMI index.
    pub hmi_nodes: Vec<NodeId>,
    /// The MANA tap on the external switch.
    pub external_tap: TapId,
    /// Per-site internal switches (multi-site deployments only).
    pub site_internal_switches: Vec<SwitchId>,
    /// Per-site external switches (multi-site deployments only).
    pub site_external_switches: Vec<SwitchId>,
    /// Per-site internal WAN trunk links (multi-site only; the severing
    /// point of a site's replication uplink).
    internal_trunks: Vec<simnet::link::LinkId>,
    /// Per-site external WAN trunk links (multi-site only).
    external_trunks: Vec<simnet::link::LinkId>,
    /// Spare external-switch ports for attacker attachment.
    spare_external_ports: Vec<usize>,
    /// Spare internal-switch ports (if an internal switch exists).
    spare_internal_ports: Vec<usize>,
}

impl Deployment {
    /// Builds the deployment.
    pub fn build(cfg: SpireConfig, hardening: HardeningProfile, seed: u64) -> Self {
        let mut sim = Simulation::new(seed);
        let obs = obs::ObsHub::new();
        sim.attach_obs(&obs);
        let n = cfg.n() as usize;
        let n_proxies = cfg.proxies.len();
        let n_hmis = cfg.hmis as usize;

        // ---- Nodes (MACs are derived from NodeId + interface index). ----
        let mut replica_nodes = Vec::new();
        for i in 0..cfg.n() {
            let interfaces = vec![
                iface(&hardening, cfg.internal_ip(i)),
                iface(&hardening, cfg.replica_external_ip(i)),
            ];
            let mut host = ReplicaHost::new(cfg.clone(), i);
            host.attach_obs(&obs);
            let mut spec = NodeSpec::new(format!("replica-{i}"), interfaces, Box::new(host));
            spec.answers_arp_for_other_ifaces = !hardening.no_cross_iface_arp;
            spec.strict_interface_binding = hardening.firewall_lockdown;
            spec.firewall = replica_firewall(&cfg, &hardening, i);
            replica_nodes.push(sim.add_node(spec));
        }
        let mut proxy_nodes = Vec::new();
        let mut plc_nodes = Vec::new();
        for p in 0..n_proxies as u32 {
            let interfaces = vec![
                iface(&hardening, cfg.proxy_ip(p)),
                iface(&hardening, cfg.proxy_cable_ip(p)),
            ];
            let mut proxy = PlcProxy::new(cfg.clone(), p);
            proxy.attach_obs(&obs);
            let mut spec = NodeSpec::new(format!("proxy-{p}"), interfaces, Box::new(proxy));
            spec.answers_arp_for_other_ifaces = !hardening.no_cross_iface_arp;
            spec.strict_interface_binding = hardening.firewall_lockdown;
            spec.firewall = proxy_firewall(&cfg, &hardening, p);
            proxy_nodes.push(sim.add_node(spec));

            // The PLC is the *unhardenable* component: no host firewall, no
            // static ARP, speaks unauthenticated Modbus to anyone who can
            // reach it. That is exactly why §III-B puts it behind a proxy
            // on a direct cable.
            let scenario = cfg.proxies[p as usize].scenario;
            let plc_spec = NodeSpec::new(
                format!("plc-{p}"),
                vec![InterfaceSpec::dynamic(cfg.plc_cable_ip(p))],
                Box::new(PlcEmulator::new(scenario)),
            );
            let plc_node = sim.add_node(plc_spec);
            if let Some(plc) = sim.process_mut::<PlcEmulator>(plc_node) {
                plc.attach_obs(&obs, plc_node.0);
            }
            plc_nodes.push(plc_node);
        }
        let mut hmi_nodes = Vec::new();
        for h in 0..cfg.hmis {
            let mut hmi = HmiHost::new(cfg.clone(), h);
            hmi.attach_obs(&obs);
            let mut spec = NodeSpec::new(
                format!("hmi-{h}"),
                vec![iface(&hardening, cfg.hmi_ip(h))],
                Box::new(hmi),
            );
            spec.answers_arp_for_other_ifaces = !hardening.no_cross_iface_arp;
            spec.strict_interface_binding = hardening.firewall_lockdown;
            spec.firewall = hmi_firewall(&cfg, &hardening);
            hmi_nodes.push(sim.add_node(spec));
        }

        // ---- Switching fabric. ----
        // Single-LAN deployments (§IV/§V, and `6@1`) get the original one-
        // or two-switch fabric. Multi-site placements get per-site access
        // switches joined star-wise through a WAN hub per overlay, with
        // each site's trunk carrying that site's uplink latency/loss
        // profile — the trunk is the thing E13 severs.
        let multi_site = cfg
            .sites
            .as_ref()
            .map(|t| t.site_count() > 1)
            .unwrap_or(false);
        let external_switch;
        let external_tap;
        let mut internal_switch = None;
        let mut site_internal_switches = Vec::new();
        let mut site_external_switches = Vec::new();
        let mut internal_trunks = Vec::new();
        let mut external_trunks = Vec::new();
        let spare_external_ports: Vec<usize>;
        let mut spare_internal_ports: Vec<usize> = Vec::new();

        let static_mode = |plan: &[(NodeId, usize)], remote: &[(MacAddr, usize)]| {
            let mut map: BTreeMap<MacAddr, usize> = plan
                .iter()
                .enumerate()
                .map(|(port, &(node, ifidx))| (MacAddr::derived(node, ifidx as u8), port))
                .collect();
            for &(mac, port) in remote {
                map.insert(mac, port);
            }
            SwitchMode::Static {
                map,
                enforce_ingress: true,
            }
        };

        if multi_site {
            let topo = cfg.sites.clone().expect("multi-site");
            let nsites = topo.site_count();
            let trunk_spec = |site: &crate::site::Site| {
                let mut spec = LinkSpec::wan();
                spec.latency = site.wan_latency;
                spec.loss = site.wan_loss;
                spec
            };
            // MAC inventory per overlay, with each MAC's home site.
            let int_macs: Vec<(MacAddr, usize)> = (0..n)
                .map(|r| {
                    let home = topo.site_of_replica(r as u32).expect("replica homed");
                    (MacAddr::derived(replica_nodes[r], 0), home)
                })
                .collect();
            let mut ext_macs: Vec<(MacAddr, usize)> = (0..n)
                .map(|r| {
                    let home = topo.site_of_replica(r as u32).expect("replica homed");
                    (MacAddr::derived(replica_nodes[r], 1), home)
                })
                .collect();
            for (p, &node) in proxy_nodes.iter().enumerate().take(n_proxies) {
                ext_macs.push((MacAddr::derived(node, 0), topo.home_of_proxy(p as u32)));
            }
            for (h, &node) in hmi_nodes.iter().enumerate().take(n_hmis) {
                ext_macs.push((MacAddr::derived(node, 0), topo.home_of_hmi(h as u32)));
            }

            // Internal overlay: per-site replica switches + WAN hub.
            let int_hub_mode = if hardening.static_switch {
                SwitchMode::Static {
                    map: int_macs.iter().map(|&(mac, home)| (mac, home)).collect(),
                    enforce_ingress: true,
                }
            } else {
                SwitchMode::Learning
            };
            let int_hub = sim.add_switch(nsites, int_hub_mode);
            for (s, site) in topo.sites.iter().enumerate() {
                let plan: Vec<(NodeId, usize)> = site
                    .replicas
                    .iter()
                    .map(|&r| (replica_nodes[r as usize], 0))
                    .collect();
                let trunk_port = plan.len();
                let mode = if hardening.static_switch {
                    let remote: Vec<(MacAddr, usize)> = int_macs
                        .iter()
                        .filter(|&&(_, home)| home != s)
                        .map(|&(mac, _)| (mac, trunk_port))
                        .collect();
                    static_mode(&plan, &remote)
                } else {
                    SwitchMode::Learning
                };
                let sw = sim.add_switch(plan.len() + 1, mode);
                for (port, &(node, ifidx)) in plan.iter().enumerate() {
                    sim.connect(node, ifidx, sw, port, LinkSpec::lan());
                }
                internal_trunks.push(sim.connect_switches(
                    (sw, trunk_port),
                    (int_hub, s),
                    trunk_spec(site),
                ));
                site_internal_switches.push(sw);
            }

            // External overlay: per-site access switches + WAN hub (with
            // spare hub ports for attacker attachment).
            let ext_hub_ports = nsites + SPARE_PORTS;
            let ext_hub_mode = if hardening.static_switch {
                SwitchMode::Static {
                    map: ext_macs.iter().map(|&(mac, home)| (mac, home)).collect(),
                    enforce_ingress: true,
                }
            } else {
                SwitchMode::Learning
            };
            let ext_hub = sim.add_switch(ext_hub_ports, ext_hub_mode);
            for (s, site) in topo.sites.iter().enumerate() {
                let mut plan: Vec<(NodeId, usize)> = site
                    .replicas
                    .iter()
                    .map(|&r| (replica_nodes[r as usize], 1))
                    .collect();
                for p in 0..n_proxies {
                    if topo.home_of_proxy(p as u32) == s {
                        plan.push((proxy_nodes[p], 0));
                        if !hardening.plc_behind_proxy {
                            plan.push((proxy_nodes[p], 1));
                            plan.push((plc_nodes[p], 0));
                        }
                    }
                }
                for (h, &node) in hmi_nodes.iter().enumerate().take(n_hmis) {
                    if topo.home_of_hmi(h as u32) == s {
                        plan.push((node, 0));
                    }
                }
                let trunk_port = plan.len();
                let mode = if hardening.static_switch {
                    let remote: Vec<(MacAddr, usize)> = ext_macs
                        .iter()
                        .filter(|&&(_, home)| home != s)
                        .map(|&(mac, _)| (mac, trunk_port))
                        .collect();
                    static_mode(&plan, &remote)
                } else {
                    SwitchMode::Learning
                };
                let sw = sim.add_switch(plan.len() + 1, mode);
                for (port, &(node, ifidx)) in plan.iter().enumerate() {
                    sim.connect(node, ifidx, sw, port, LinkSpec::lan());
                }
                external_trunks.push(sim.connect_switches(
                    (sw, trunk_port),
                    (ext_hub, s),
                    trunk_spec(site),
                ));
                site_external_switches.push(sw);
            }
            external_switch = ext_hub;
            external_tap = sim.add_tap(ext_hub);
            spare_external_ports = (nsites..ext_hub_ports).collect();
        } else {
            // ---- External switch: plan port assignments. ----
            // ports: [replicas if1][proxies if0][hmis if0]
            //        [replicas if0 if !isolated][proxy if1 + plc if0 if !behind_proxy][spares]
            let mut plan: Vec<(NodeId, usize)> = Vec::new();
            for &node in &replica_nodes {
                plan.push((node, 1));
            }
            for &node in &proxy_nodes {
                plan.push((node, 0));
            }
            for &node in &hmi_nodes {
                plan.push((node, 0));
            }
            if !hardening.isolated_internal {
                for &node in &replica_nodes {
                    plan.push((node, 0));
                }
            }
            if !hardening.plc_behind_proxy {
                for &node in &proxy_nodes {
                    plan.push((node, 1));
                }
                for &node in &plc_nodes {
                    plan.push((node, 0));
                }
            }
            let ext_ports = plan.len() + SPARE_PORTS;
            let ext_mode = if hardening.static_switch {
                static_mode(&plan, &[])
            } else {
                SwitchMode::Learning
            };
            let sw = sim.add_switch(ext_ports, ext_mode);
            for (port, &(node, ifidx)) in plan.iter().enumerate() {
                sim.connect(node, ifidx, sw, port, LinkSpec::lan());
            }
            external_switch = sw;
            spare_external_ports = (plan.len()..ext_ports).collect();
            external_tap = sim.add_tap(sw);

            // ---- Internal switch (isolated replication network). ----
            if hardening.isolated_internal {
                let int_plan: Vec<(NodeId, usize)> =
                    replica_nodes.iter().map(|&node| (node, 0)).collect();
                let int_ports = int_plan.len() + SPARE_PORTS;
                let mode = if hardening.static_switch {
                    static_mode(&int_plan, &[])
                } else {
                    SwitchMode::Learning
                };
                let sw = sim.add_switch(int_ports, mode);
                for (port, &(node, ifidx)) in int_plan.iter().enumerate() {
                    sim.connect(node, ifidx, sw, port, LinkSpec::lan());
                }
                spare_internal_ports = (int_plan.len()..int_ports).collect();
                internal_switch = Some(sw);
            }
        }

        // ---- PLC cables (or exposed PLCs, handled above). ----
        if hardening.plc_behind_proxy {
            for p in 0..n_proxies {
                sim.connect_direct((proxy_nodes[p], 1), (plc_nodes[p], 0), LinkSpec::cable());
            }
        }

        // ---- Static ARP provisioning. ----
        if hardening.static_arp {
            let ext_participants: Vec<(simnet::types::IpAddr, MacAddr)> = {
                let mut v = Vec::new();
                for i in 0..cfg.n() {
                    v.push((
                        cfg.replica_external_ip(i),
                        MacAddr::derived(replica_nodes[i as usize], 1),
                    ));
                }
                for p in 0..n_proxies as u32 {
                    v.push((
                        cfg.proxy_ip(p),
                        MacAddr::derived(proxy_nodes[p as usize], 0),
                    ));
                }
                for h in 0..cfg.hmis {
                    v.push((cfg.hmi_ip(h), MacAddr::derived(hmi_nodes[h as usize], 0)));
                }
                v
            };
            for i in 0..n {
                // Internal peers on if0.
                for j in 0..n {
                    if i != j {
                        sim.install_arp(
                            replica_nodes[i],
                            0,
                            cfg.internal_ip(j as u32),
                            MacAddr::derived(replica_nodes[j], 0),
                        );
                    }
                }
                // External participants on if1.
                for &(ip, mac) in &ext_participants {
                    sim.install_arp(replica_nodes[i], 1, ip, mac);
                }
            }
            for p in 0..n_proxies {
                for &(ip, mac) in &ext_participants {
                    sim.install_arp(proxy_nodes[p], 0, ip, mac);
                }
                sim.install_arp(
                    proxy_nodes[p],
                    1,
                    cfg.plc_cable_ip(p as u32),
                    MacAddr::derived(plc_nodes[p], 0),
                );
                // (The PLC keeps dynamic ARP — real devices cannot be
                // provisioned with static tables.)
            }
            for &hmi_node in hmi_nodes.iter().take(n_hmis) {
                for &(ip, mac) in &ext_participants {
                    sim.install_arp(hmi_node, 0, ip, mac);
                }
            }
        }

        Deployment {
            sim,
            obs,
            cfg,
            hardening,
            external_switch,
            internal_switch,
            replica_nodes,
            proxy_nodes,
            plc_nodes,
            hmi_nodes,
            external_tap,
            site_internal_switches,
            site_external_switches,
            internal_trunks,
            external_trunks,
            spare_external_ports,
            spare_internal_ports,
        }
    }

    /// Runs the simulation for `dur`.
    pub fn run_for(&mut self, dur: SimDuration) {
        self.sim.run_for(dur);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Read access to replica host `i`.
    pub fn replica(&self, i: u32) -> &ReplicaHost {
        self.sim
            .process_ref::<ReplicaHost>(self.replica_nodes[i as usize])
            .expect("replica host")
    }

    /// Mutable access to replica host `i` (fault injection, daemon
    /// manipulation — the attacker's hands-on-keyboard access).
    pub fn replica_mut(&mut self, i: u32) -> &mut ReplicaHost {
        self.sim
            .process_mut::<ReplicaHost>(self.replica_nodes[i as usize])
            .expect("replica host")
    }

    /// Read access to proxy `p`.
    pub fn proxy(&self, p: u32) -> &PlcProxy {
        self.sim
            .process_ref::<PlcProxy>(self.proxy_nodes[p as usize])
            .expect("proxy")
    }

    /// Mutable access to proxy `p`.
    pub fn proxy_mut(&mut self, p: u32) -> &mut PlcProxy {
        self.sim
            .process_mut::<PlcProxy>(self.proxy_nodes[p as usize])
            .expect("proxy")
    }

    /// Read access to the PLC behind proxy `p`.
    pub fn plc(&self, p: u32) -> &PlcEmulator {
        self.sim
            .process_ref::<PlcEmulator>(self.plc_nodes[p as usize])
            .expect("plc")
    }

    /// Mutable access to the PLC behind proxy `p` (the measurement device
    /// physically flips breakers through this).
    pub fn plc_mut(&mut self, p: u32) -> &mut PlcEmulator {
        self.sim
            .process_mut::<PlcEmulator>(self.plc_nodes[p as usize])
            .expect("plc")
    }

    /// Read access to HMI `h`.
    pub fn hmi(&self, h: u32) -> &HmiHost {
        self.sim
            .process_ref::<HmiHost>(self.hmi_nodes[h as usize])
            .expect("hmi")
    }

    /// Mutable access to HMI `h`.
    pub fn hmi_mut(&mut self, h: u32) -> &mut HmiHost {
        self.sim
            .process_mut::<HmiHost>(self.hmi_nodes[h as usize])
            .expect("hmi")
    }

    /// Whether replica `i`'s node is currently up (reachable on the
    /// overlays). Observable health, not oracle knowledge: a response
    /// controller may key off this without peeking at fault schedules.
    pub fn replica_up(&self, i: u32) -> bool {
        self.sim.node_up(self.replica_nodes[i as usize])
    }

    /// Probes replica `i`'s flight-recorder health gauges (PO-queue
    /// depth, TAT, view, catch-up flag) at the current simulated time.
    /// Works whether or not periodic health journaling is armed.
    pub fn replica_health(&self, i: u32) -> prime::replica::HealthSample {
        self.replica(i).replica.health_sample(self.now())
    }

    /// Pushes a status-update rate limit into proxy `p` (`None` lifts
    /// it) — the response controller's throttling actuator.
    pub fn set_proxy_rate_limit(&mut self, p: u32, min_interval: Option<SimDuration>) {
        self.proxy_mut(p).set_update_rate_limit(min_interval);
    }

    /// Takes replica `i` down for proactive recovery (or a crash).
    pub fn take_replica_down(&mut self, i: u32) {
        self.obs.journal(obs::Event::RecoveryStart { replica: i });
        self.sim.set_node_up(self.replica_nodes[i as usize], false);
    }

    /// Brings replica `i` back with a clean, re-diversified image. The new
    /// host immediately runs Prime's recovery (catch-up + app-level state
    /// transfer).
    pub fn restore_replica(&mut self, i: u32) {
        let node = self.replica_nodes[i as usize];
        self.sim.set_node_up(node, true);
        let mut host = ReplicaHost::new(self.cfg.clone(), i);
        host.attach_obs(&self.obs);
        host.pending_recovery = true;
        self.sim.replace_process(node, Box::new(host));
    }

    /// Runs the deployment for `dur` with a proactive-recovery scheduler
    /// driving replica rejuvenation (take down → clean restart → Prime
    /// catch-up + application state transfer), the §II long-lifetime
    /// defense. At most one replica is down at a time per the scheduler's
    /// `k`. Returns the number of recoveries completed.
    pub fn run_with_recovery(
        &mut self,
        dur: SimDuration,
        scheduler: &mut diversity::recovery::RecoveryScheduler,
    ) -> u64 {
        let deadline = self.now() + dur;
        let step = SimDuration::from_millis(500);
        let mut down: Option<(u32, SimTime)> = None;
        while self.now() < deadline {
            self.sim.run_for(step);
            let now = self.now();
            if let Some((replica, finish)) = down {
                if now >= finish {
                    self.restore_replica(replica);
                    down = None;
                }
            }
            if down.is_none() {
                for event in scheduler.poll(now) {
                    self.take_replica_down(event.replica);
                    down = Some((event.replica, event.finish));
                }
            }
        }
        if let Some((replica, _)) = down {
            self.restore_replica(replica);
        }
        scheduler.completed
    }

    /// The §III-A automatic system reset for assumption breaches that no
    /// replica quorum survives: every replica restarts together from a
    /// clean image with *empty* state (a fresh replication era). Field
    /// polling then repopulates the SCADA state from ground truth.
    pub fn system_reset(&mut self) {
        for i in 0..self.cfg.n() {
            let node = self.replica_nodes[i as usize];
            self.sim.set_node_up(node, true);
            let mut host = ReplicaHost::new(self.cfg.clone(), i);
            host.attach_obs(&self.obs);
            self.sim.replace_process(node, Box::new(host));
        }
    }

    /// Attaches an attacker node to the external (operations) switch on a
    /// spare port. Returns the node id.
    ///
    /// # Panics
    ///
    /// Panics when no spare ports remain.
    pub fn attach_external_attacker(&mut self, spec: NodeSpec) -> NodeId {
        let port = self
            .spare_external_ports
            .pop()
            .expect("spare external port");
        let node = self.sim.add_node(spec);
        self.sim
            .connect(node, 0, self.external_switch, port, LinkSpec::lan());
        // The attacker's own MAC is legitimate on its port (they occupy a
        // real network drop); spoofing *other* MACs is what port security
        // blocks.
        let mac = MacAddr::derived(node, 0);
        self.sim
            .authorize_switch_port(self.external_switch, mac, port);
        // Multi-site: the drop is at the WAN hub, so each site switch
        // learns the attacker's MAC behind its trunk (last port).
        for &sw in &self.site_external_switches {
            let trunk_port = self.sim.switch(sw).port_count() - 1;
            self.sim.authorize_switch_port(sw, mac, trunk_port);
        }
        node
    }

    /// Attaches an attacker to the internal switch (only possible when one
    /// exists; physical isolation otherwise keeps outsiders off it).
    pub fn attach_internal_attacker(&mut self, spec: NodeSpec) -> Option<NodeId> {
        let sw = self.internal_switch?;
        let port = self.spare_internal_ports.pop()?;
        let node = self.sim.add_node(spec);
        self.sim.connect(node, 0, sw, port, LinkSpec::lan());
        Some(node)
    }

    /// Partitions the internal (replication) switch so the `isolated`
    /// replicas can only talk among themselves; everyone else stays in
    /// the majority group. Internal switch port `i` hosts replica `i` by
    /// construction. Returns false when no internal switch exists.
    pub fn partition_internal(&mut self, isolated: &[u32]) -> bool {
        let Some(sw) = self.internal_switch else {
            return false;
        };
        let groups: BTreeMap<usize, u32> = isolated.iter().map(|&r| (r as usize, 1u32)).collect();
        self.sim.set_switch_partition(sw, groups);
        true
    }

    /// Heals an internal-switch partition (no-op when none is active).
    pub fn heal_internal_partition(&mut self) {
        if let Some(sw) = self.internal_switch {
            self.sim.clear_switch_partition(sw);
        }
    }

    /// Severs an entire site from the deployment — the E13 fault.
    ///
    /// Multi-site placements lose the site's internal *and* external WAN
    /// trunks (everything inside the site keeps running, cut off from the
    /// world). The single-site `6@1` placement has no trunks to cut:
    /// losing "the site" takes down every replica's access links instead,
    /// which is the point — there is no remaining site to fail over to.
    ///
    /// No-op for deployments without a site topology.
    pub fn sever_site(&mut self, site: usize) {
        self.set_site_connectivity(site, false);
    }

    /// Reconnects a severed site (reverse of [`Deployment::sever_site`]).
    pub fn heal_site(&mut self, site: usize) {
        self.set_site_connectivity(site, true);
    }

    fn set_site_connectivity(&mut self, site: usize, up: bool) {
        if !self.internal_trunks.is_empty() {
            self.sim.set_link_up(self.internal_trunks[site], up);
            self.sim.set_link_up(self.external_trunks[site], up);
        } else if let Some(topo) = &self.cfg.sites {
            let nodes: Vec<NodeId> = topo
                .replicas_of(site)
                .iter()
                .map(|&r| self.replica_nodes[r as usize])
                .collect();
            for node in nodes {
                for ifidx in 0..2 {
                    if let Some(link) = self.sim.link_of(node, ifidx) {
                        self.sim.set_link_up(link, up);
                    }
                }
            }
        }
    }

    /// What ordering can still do after losing `site` (see
    /// [`crate::site::SiteTopology::survival_after_losing`]). `None` for
    /// deployments without a site topology.
    pub fn site_survival(&self, site: usize) -> Option<SurvivalMode> {
        self.cfg
            .sites
            .as_ref()
            .map(|t| t.survival_after_losing(&self.cfg.prime, site))
    }

    /// The management-plane failover after `site` is lost: when the
    /// survivors cannot meet the native quorum but a degraded membership
    /// epoch is possible, installs that epoch on every survivor. Returns
    /// the survival mode so the caller knows what to expect (`None` when
    /// no site topology is configured).
    pub fn failover_after_site_loss(&mut self, site: usize) -> Option<SurvivalMode> {
        let survival = self.site_survival(site)?;
        if let SurvivalMode::DegradedEpoch(membership) = &survival {
            let now = self.now();
            let members = membership.members().to_vec();
            for r in members {
                let m = membership.clone();
                self.replica_mut(r).replica.set_membership(m, now);
            }
        }
        Some(survival)
    }

    /// The management-plane failback once a severed site heals: every
    /// replica returns to the full static membership (the previously
    /// severed ones never left it) and the protocol's catch-up machinery
    /// brings them up to date.
    pub fn failback_full_membership(&mut self) {
        for i in 0..self.cfg.n() {
            self.replica_mut(i).replica.clear_membership();
        }
    }

    /// Minimum executed count across the given (presumed live) replicas.
    pub fn min_executed_among(&self, replicas: &[u32]) -> u64 {
        replicas
            .iter()
            .map(|&i| self.replica(i).replica.exec_seq())
            .min()
            .unwrap_or(0)
    }

    /// The link attached to replica `i`'s interface `ifidx` (0 =
    /// internal/replication, 1 = external/operations).
    pub fn replica_link(&self, i: u32, ifidx: usize) -> Option<simnet::link::LinkId> {
        self.sim.link_of(self.replica_nodes[i as usize], ifidx)
    }

    /// Minimum executed count across correct replicas.
    pub fn min_executed(&self) -> u64 {
        (0..self.cfg.n())
            .filter(|&i| self.sim.node_up(self.replica_nodes[i as usize]))
            .map(|i| self.replica(i).replica.exec_seq())
            .filter(|_| true)
            .min()
            .unwrap_or(0)
    }
}

fn iface(hardening: &HardeningProfile, ip: simnet::types::IpAddr) -> InterfaceSpec {
    if hardening.static_arp {
        InterfaceSpec::static_arp(ip)
    } else {
        InterfaceSpec::dynamic(ip)
    }
}

fn base_firewall(hardening: &HardeningProfile) -> Firewall {
    let mut fw = if hardening.firewall_lockdown {
        Firewall::locked_down()
    } else {
        Firewall::open()
    };
    // The open OS profile leaves extra services listening; model that as
    // IPv6 left on (an extra, unfirewalled surface flag).
    fw.ipv6_enabled = hardening.os == OsProfile::UbuntuDesktop || !hardening.firewall_lockdown;
    fw
}

fn replica_firewall(cfg: &SpireConfig, hardening: &HardeningProfile, me: u32) -> Firewall {
    let mut fw = base_firewall(hardening);
    if hardening.firewall_lockdown {
        for j in 0..cfg.n() {
            if j != me {
                fw.allow(cfg.internal_ip(j), INTERNAL_SPINES_PORT);
                fw.allow(cfg.replica_external_ip(j), EXTERNAL_SPINES_PORT);
            }
        }
        for p in 0..cfg.proxies.len() as u32 {
            fw.allow(cfg.proxy_ip(p), EXTERNAL_SPINES_PORT);
        }
        for h in 0..cfg.hmis {
            fw.allow(cfg.hmi_ip(h), EXTERNAL_SPINES_PORT);
        }
    }
    fw
}

fn proxy_firewall(cfg: &SpireConfig, hardening: &HardeningProfile, me: u32) -> Firewall {
    let mut fw = base_firewall(hardening);
    if hardening.firewall_lockdown {
        for j in 0..cfg.n() {
            fw.allow(cfg.replica_external_ip(j), EXTERNAL_SPINES_PORT);
        }
        for p in 0..cfg.proxies.len() as u32 {
            if p != me {
                fw.allow(cfg.proxy_ip(p), EXTERNAL_SPINES_PORT);
            }
        }
        for h in 0..cfg.hmis {
            fw.allow(cfg.hmi_ip(h), EXTERNAL_SPINES_PORT);
        }
        fw.allow(cfg.plc_cable_ip(me), PROXY_MODBUS_PORT);
    }
    fw
}

fn hmi_firewall(cfg: &SpireConfig, hardening: &HardeningProfile) -> Firewall {
    let mut fw = base_firewall(hardening);
    if hardening.firewall_lockdown {
        for j in 0..cfg.n() {
            fw.allow(cfg.replica_external_ip(j), EXTERNAL_SPINES_PORT);
        }
        for p in 0..cfg.proxies.len() as u32 {
            fw.allow(cfg.proxy_ip(p), EXTERNAL_SPINES_PORT);
        }
    }
    fw
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc::topology::Scenario;
    use prime::replica::Timing;
    use prime::types::Config as PrimeConfig;

    fn fast_timing() -> Timing {
        Timing {
            aru_interval: SimDuration::from_millis(10),
            pp_interval: SimDuration::from_millis(10),
            suspect_timeout: SimDuration::from_millis(2_000),
            checkpoint_interval: 20,
            catchup_timeout: SimDuration::from_millis(300),
        }
    }

    fn minimal_deployment() -> Deployment {
        let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::PlantSubset);
        let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 7);
        for i in 0..4 {
            d.replica_mut(i).set_timing(fast_timing());
        }
        d
    }

    #[test]
    fn end_to_end_rtu_status_reaches_hmi() {
        let mut d = minimal_deployment();
        d.run_for(SimDuration::from_secs(5));
        // The proxy polled, masters ordered the status, the HMI displays it.
        assert!(d.proxy(0).stats.updates_sent >= 1, "proxy sent updates");
        assert!(d.min_executed() >= 1, "replicas executed status updates");
        let hmi = d.hmi(0);
        assert!(
            hmi.stats.frames_applied >= 1,
            "HMI applied a vote-gated frame"
        );
        assert_eq!(
            hmi.hmi.positions("plant"),
            Some(vec![true, true, true].as_slice()),
            "initial breaker positions shown"
        );
    }

    #[test]
    fn end_to_end_hmi_command_actuates_breaker() {
        let mut d = minimal_deployment();
        d.run_for(SimDuration::from_secs(2));
        // Operator opens breaker B57 (index 1) from the HMI.
        let node = d.hmi_nodes[0];
        // Drive the command through the process API by injecting a cycle
        // of one flip targeted at breaker... simpler: call issue_command
        // via a one-off context is not possible from outside; use the
        // cycle generator instead.
        let _ = node;
        d.hmi_mut(0).set_cycle(crate::hmi_host::CycleConfig {
            scenario: Scenario::PlantSubset,
            period: SimDuration::from_millis(200),
            max_flips: 1,
        });
        // Re-arm by restarting the HMI process timer: the cycle only arms
        // on start, so trigger one step manually through a fresh start.
        let cfg = d.cfg.clone();
        let mut host = HmiHost::new(cfg, 0);
        host.set_cycle(crate::hmi_host::CycleConfig {
            scenario: Scenario::PlantSubset,
            period: SimDuration::from_millis(200),
            max_flips: 1,
        });
        d.sim.replace_process(d.hmi_nodes[0], Box::new(host));
        d.run_for(SimDuration::from_secs(5));
        // The first cycle step opens breaker 0 (B10-1).
        assert!(!d.plc(0).positions()[0], "breaker opened in the field");
        assert!(d.proxy(0).stats.commands_actuated >= 1);
        // And the new field state flowed back to the HMI display.
        let hmi = d.hmi(0);
        assert_eq!(hmi.hmi.positions("plant").map(|p| p[0]), Some(false));
    }

    #[test]
    fn hardened_deployment_uses_static_infrastructure() {
        let d = minimal_deployment();
        let sw = d.sim.switch(d.external_switch);
        assert!(matches!(sw.mode, SwitchMode::Static { .. }));
        assert!(d.internal_switch.is_some());
        assert_eq!(d.sim.firewall_drops(d.replica_nodes[0]), 0);
    }

    #[test]
    fn unhardened_deployment_uses_learning_and_shared_network() {
        let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::PlantSubset);
        let mut d = Deployment::build(cfg, HardeningProfile::none(), 8);
        for i in 0..4 {
            d.replica_mut(i).set_timing(fast_timing());
        }
        assert!(
            d.internal_switch.is_none(),
            "replication shares the ops network"
        );
        let sw = d.sim.switch(d.external_switch);
        assert!(matches!(sw.mode, SwitchMode::Learning));
        // The system still works without hardening — it is just exposed.
        d.run_for(SimDuration::from_secs(5));
        assert!(d.min_executed() >= 1);
        assert!(d.hmi(0).stats.frames_applied >= 1);
    }

    #[test]
    fn multi_site_deployment_runs_end_to_end() {
        let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::PlantSubset)
            .with_sites(crate::site::SiteTopology::three_plus_three());
        let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 7);
        for i in 0..6 {
            d.replica_mut(i).set_timing(fast_timing());
        }
        assert_eq!(d.site_internal_switches.len(), 2);
        assert_eq!(d.site_external_switches.len(), 2);
        d.run_for(SimDuration::from_secs(5));
        // Ordering spans the WAN: replicas at *both* sites execute, and
        // the site-0 HMI sees vote-gated frames assembled from replies
        // that crossed the trunks.
        assert!(d.min_executed() >= 1, "all six replicas execute");
        assert!(d.hmi(0).stats.frames_applied >= 1);
    }

    #[test]
    fn severed_site_triggers_degraded_epoch_and_failback() {
        let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::PlantSubset)
            .with_sites(crate::site::SiteTopology::three_plus_three());
        let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 9);
        for i in 0..6 {
            d.replica_mut(i).set_timing(fast_timing());
        }
        d.run_for(SimDuration::from_secs(3));
        let before = d.min_executed_among(&[0, 1, 2]);
        assert!(before >= 1);
        // Lose cc-b entirely: three survivors < native quorum 4.
        d.sever_site(1);
        match d.failover_after_site_loss(1) {
            Some(crate::site::SurvivalMode::DegradedEpoch(m)) => {
                assert_eq!(m.members(), &[0, 1, 2]);
            }
            other => panic!("expected degraded epoch, got {other:?}"),
        }
        d.run_for(SimDuration::from_secs(5));
        let during = d.min_executed_among(&[0, 1, 2]);
        assert!(
            during > before,
            "degraded epoch keeps ordering: {during} > {before}"
        );
        // The cut-off minority must not have advanced past the survivors.
        assert!(d.min_executed_among(&[3, 4, 5]) <= during);
        // Heal and fail back: everyone reconverges on one state.
        d.heal_site(1);
        d.failback_full_membership();
        d.run_for(SimDuration::from_secs(6));
        let finals: Vec<u64> = (0..6).map(|i| d.replica(i).replica.exec_seq()).collect();
        assert!(
            finals.iter().all(|&e| e >= during),
            "severed replicas caught up: {finals:?}"
        );
        assert!(d.min_executed() > during, "full membership makes progress");
    }

    #[test]
    fn native_quorum_site_loss_needs_no_reconfiguration() {
        let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::PlantSubset)
            .with_sites(crate::site::SiteTopology::two_two_one_one());
        let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 11);
        for i in 0..6 {
            d.replica_mut(i).set_timing(fast_timing());
        }
        d.run_for(SimDuration::from_secs(3));
        let survivors = [0u32, 1, 4, 5];
        let before = d.min_executed_among(&survivors);
        d.sever_site(1);
        assert_eq!(
            d.failover_after_site_loss(1),
            Some(crate::site::SurvivalMode::NativeQuorum)
        );
        d.run_for(SimDuration::from_secs(5));
        let during = d.min_executed_among(&survivors);
        assert!(
            during > before,
            "native quorum rides through: {during} > {before}"
        );
    }

    #[test]
    fn single_site_placement_loses_everything_on_sever() {
        let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::PlantSubset)
            .with_sites(crate::site::SiteTopology::six_at_one());
        let mut d = Deployment::build(cfg, HardeningProfile::deployed(), 13);
        for i in 0..6 {
            d.replica_mut(i).set_timing(fast_timing());
        }
        // 6@1 keeps the classic single-LAN fabric (no trunks to cut).
        assert!(d.site_internal_switches.is_empty());
        d.run_for(SimDuration::from_secs(3));
        let before = d.min_executed();
        assert!(before >= 1);
        d.sever_site(0);
        assert_eq!(d.site_survival(0), Some(crate::site::SurvivalMode::Lost));
        let frames_before = d.hmi(0).stats.frames_applied;
        d.run_for(SimDuration::from_secs(4));
        assert_eq!(d.min_executed(), before, "no replica can execute anything");
        assert_eq!(
            d.hmi(0).stats.frames_applied,
            frames_before,
            "the HMI goes dark"
        );
    }

    #[test]
    fn proactive_recovery_round_trip() {
        let mut d = minimal_deployment();
        d.run_for(SimDuration::from_secs(4));
        let exec_before = d.replica(3).replica.exec_seq();
        assert!(exec_before >= 1);
        d.take_replica_down(3);
        d.run_for(SimDuration::from_secs(2));
        d.restore_replica(3);
        d.run_for(SimDuration::from_secs(4));
        let restored = d.replica(3);
        assert!(
            restored.replica.exec_seq() >= exec_before,
            "recovered replica caught up: {} >= {exec_before}",
            restored.replica.exec_seq()
        );
        assert!(
            restored.stats.state_transfers >= 1,
            "app-level state transfer ran"
        );
        // Meanwhile the system never stopped.
        assert!(d.hmi(0).stats.frames_applied >= 1);
    }
}
