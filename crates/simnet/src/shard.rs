//! Conservative parallel scheduler: shards the world along high-latency
//! link boundaries and runs lookahead windows on worker threads, then
//! replays each window's bookkeeping to assign global sequence numbers in
//! the exact order the sequential engine would have — which is what makes
//! the run digest bit-for-bit identical at every thread count.
//!
//! # Shard boundaries and lookahead
//!
//! The planner contracts every link faster than a threshold θ (trying the
//! distinct link latencies from slowest down) until the remaining graph
//! splits into at least `threads` components, then bin-packs components
//! onto shards by weight. Every cross-shard link therefore has latency of
//! at least θ, and the minimum cross latency `L` is the lookahead: an
//! event executed at time `t` can only influence another shard at `t + L`
//! or later, so all shards may run `[t0, t0 + L)` concurrently without
//! ever seeing a message from the "future". This is the classic
//! conservative window-barrier rule; on the paper's topologies the natural
//! cuts are the site/WAN boundaries (5 ms) and the LAN links (50 µs)
//! between hardened hosts.
//!
//! # Determinism argument
//!
//! The sequential engine dispatches in `(time, seq)` order, where `seq`
//! is assigned at *creation*. A shard cannot know the global sequence
//! numbers of events it creates mid-window (another shard may be creating
//! events "earlier" in sequential order), so it keys them provisionally:
//! `PENDING_BIT | rank` with a per-shard monotone rank. At equal times a
//! provisional key sorts after every already-assigned sequence number —
//! exactly where the sequential engine would put a just-created event —
//! and two provisional keys sort in shard-local creation order, which is
//! a suborder of the global creation order. Both match the sequential
//! tie-break, so *within a window* each shard pops the same local
//! sub-schedule the sequential engine would.
//!
//! At the barrier the coordinator replays the window: every dispatch with
//! side effects was recorded as `(time, id, #created, #journal, #logs)`,
//! and a k-way merge over the per-shard records in `(time, seq)` order
//! assigns fresh global sequence numbers to created events in merge
//! order. Because merge order equals sequential dispatch order, the
//! assignment reproduces the sequential `seq` counter exactly; pending
//! keys still sitting in shard queues are rekeyed to their real numbers,
//! cross-shard events are delivered with their real numbers (their
//! arrival lies at or beyond the next window by the lookahead rule), and
//! journal/log record runs are spliced in merge order, byte-identical to
//! the sequential journal. Anything the shards cannot reproduce exactly —
//! live trace echo, trace spans, lossy links drawing the shared RNG — is
//! declared ineligible up front and the run falls back to the sequential
//! loop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use obs::event::TimedEvent;
use obs::sink;

use crate::exec::{EventKind, EventSink, Exec, World};
use crate::link::Link;
use crate::queue::{EventHandle, EventQueue};
use crate::sim::{EndpointRef, Simulation};
use crate::time::SimTime;
use crate::types::NodeId;

/// High bit marking a provisional (not yet globally sequenced) event key.
/// Real sequence numbers stay far below this for any feasible run length.
const PENDING_BIT: u64 = 1 << 63;

/// Sentinel for "no sequence number assigned yet" in replay bookkeeping.
const UNASSIGNED: u64 = u64::MAX;

/// A sharding of the world onto worker threads.
pub(crate) struct Plan {
    /// Shard owning each node.
    node_owner: Vec<u8>,
    /// Shard owning each switch (and its taps).
    switch_owner: Vec<u8>,
    /// Number of shards (>= 2).
    shards: usize,
    /// Minimum cross-shard link latency in µs; `None` when no link
    /// crosses a shard boundary (windows then run to the deadline).
    lookahead_us: Option<u64>,
}

/// Union-find over the node+switch vertex set, used to contract
/// fast links when computing shard boundaries.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Deterministic union: the smaller root wins, so component roots are
    /// stable regardless of link iteration order.
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

fn endpoint_vertex(e: &EndpointRef, n_nodes: usize) -> u32 {
    match e {
        EndpointRef::Nic { node, .. } => node.0,
        EndpointRef::SwitchPort { switch, .. } => n_nodes as u32 + switch.0,
    }
}

/// Computes a shard plan, or `None` when the topology cannot support at
/// least two shards with a positive lookahead.
fn make_plan(world: &World, threads: usize) -> Option<Plan> {
    let n_nodes = world.nodes.len();
    let n_switches = world.switches.len();
    let verts = n_nodes + n_switches;
    if verts < 2 || threads < 2 {
        return None;
    }
    let links: Vec<(u32, u32, u64)> = world
        .links
        .iter()
        .flatten()
        .map(|(l, a, b)| {
            (
                endpoint_vertex(a, n_nodes),
                endpoint_vertex(b, n_nodes),
                l.spec.latency.as_micros(),
            )
        })
        .collect();
    // Candidate contraction thresholds: the distinct positive latencies.
    // Zero-latency links are always contracted (a zero-lookahead window
    // cannot advance), so all-zero topologies stay sequential.
    let mut thetas: Vec<u64> = links
        .iter()
        .map(|&(_, _, lat)| lat)
        .filter(|&l| l > 0)
        .collect();
    thetas.sort_unstable();
    thetas.dedup();
    // Try the slowest threshold first: contracting everything faster than
    // θ yields the fewest shards but the largest lookahead. Take the first
    // θ that yields enough components for every thread; if none does,
    // keep the most parallel plan seen (ties favor the larger θ).
    let mut chosen: Option<(usize, Dsu)> = None;
    for &theta in thetas.iter().rev() {
        let mut dsu = Dsu::new(verts);
        for &(a, b, lat) in &links {
            if lat < theta {
                dsu.union(a, b);
            }
        }
        let mut comps = 0usize;
        for v in 0..verts as u32 {
            if dsu.find(v) == v {
                comps += 1;
            }
        }
        if comps >= 2 && chosen.as_ref().is_none_or(|&(best, _)| comps > best) {
            let enough = comps >= threads;
            chosen = Some((comps, dsu));
            if enough {
                break;
            }
        }
    }
    let (comps, mut dsu) = chosen?;
    // Pack components onto shards: heaviest first onto the least-loaded
    // bin, all ties broken by index so the plan is a pure function of the
    // topology.
    let bins = threads.min(comps).min(u8::MAX as usize);
    let mut weight_by_root: BTreeMap<u32, u64> = BTreeMap::new();
    for v in 0..verts as u32 {
        *weight_by_root.entry(dsu.find(v)).or_insert(0) += 1;
    }
    let mut comps_sorted: Vec<(u64, u32)> =
        weight_by_root.iter().map(|(&root, &w)| (w, root)).collect();
    comps_sorted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut bin_of_root: BTreeMap<u32, u8> = BTreeMap::new();
    let mut load = vec![0u64; bins];
    for (w, root) in comps_sorted {
        let bin = (0..bins).min_by_key(|&b| (load[b], b)).expect("bins >= 2");
        load[bin] += w;
        bin_of_root.insert(root, bin as u8);
    }
    let node_owner: Vec<u8> = (0..n_nodes as u32)
        .map(|v| bin_of_root[&dsu.find(v)])
        .collect();
    let switch_owner: Vec<u8> = (0..n_switches as u32)
        .map(|v| bin_of_root[&dsu.find(n_nodes as u32 + v)])
        .collect();
    // Lookahead: the fastest link that still crosses a shard boundary.
    let mut lookahead_us: Option<u64> = None;
    for (l, a, b) in world.links.iter().flatten() {
        if owner_of_endpoint(a, &node_owner, &switch_owner)
            != owner_of_endpoint(b, &node_owner, &switch_owner)
        {
            let lat = l.spec.latency.as_micros();
            debug_assert!(lat > 0, "zero-latency link crossed a shard boundary");
            lookahead_us = Some(lookahead_us.map_or(lat, |cur| cur.min(lat)));
        }
    }
    if lookahead_us == Some(0) {
        return None;
    }
    Some(Plan {
        node_owner,
        switch_owner,
        shards: bins,
        lookahead_us,
    })
}

fn owner_of_endpoint(e: &EndpointRef, node_owner: &[u8], switch_owner: &[u8]) -> u8 {
    match e {
        EndpointRef::Nic { node, .. } => node_owner[node.0 as usize],
        EndpointRef::SwitchPort { switch, .. } => switch_owner[switch.0 as usize],
    }
}

fn owner_of_event(kind: &EventKind, node_owner: &[u8], switch_owner: &[u8]) -> u8 {
    match kind {
        EventKind::FrameAt { to, .. } => owner_of_endpoint(to, node_owner, switch_owner),
        EventKind::Timer { node, .. }
        | EventKind::Start { node, .. }
        | EventKind::ArpRetry { node, .. } => node_owner[node.0 as usize],
    }
}

/// What became of an event scheduled during a window, in creation order.
/// The replay merge walks this list to hand out global sequence numbers.
enum CreatedMeta {
    /// Stayed in the creating shard's queue (or was already dispatched
    /// later in the same window) under a provisional key.
    Local,
    /// Crosses a shard boundary: parked here until the barrier assigns
    /// its sequence number, then delivered to `dest`'s inbox.
    Cross { dest: u8, at: u64, kind: EventKind },
}

/// Identity of a dispatched event in a shard's window log.
#[derive(Clone, Copy)]
enum EvId {
    /// Already globally sequenced (pre-window queue or inbox delivery).
    Global(u64),
    /// Created this window; index into the shard's created list.
    Pending(u32),
}

/// One dispatch's bookkeeping: which event ran and how many created
/// events / journal records / log lines it produced. Dispatches with no
/// side effects are not recorded (pops are counted separately).
struct DispatchRec {
    at: u64,
    id: EvId,
    created: u32,
    journal: u32,
    logs: u32,
}

/// Everything a shard hands the coordinator at a window barrier.
struct WindowEnd {
    dispatch: Vec<DispatchRec>,
    created: Vec<CreatedMeta>,
    journal: Vec<TimedEvent>,
    logs: Vec<(SimTime, NodeId, String)>,
    /// Earliest queued event time after the window, for the next t0.
    next_at: Option<u64>,
    /// Events dispatched (side effects or not) — the throughput count.
    pops: u64,
}

/// Everything the coordinator hands a shard at a window start.
struct WindowStart {
    /// Final window: apply assignments/inbox, then return the shard state.
    stop: bool,
    /// Exclusive end of the window; events at `t >= t1` wait.
    t1: u64,
    /// Global sequence numbers for the previous window's created list.
    assignments: Vec<u64>,
    /// Cross-shard deliveries `(at, seq, kind)` landing in this shard.
    inbox: Vec<(u64, u64, EventKind)>,
}

/// A shard's complete private state between barriers.
struct ShardState {
    me: u8,
    world: World,
    queue: EventQueue<EventKind>,
    /// Queue handles for the previous window's created list (None for
    /// cross-shard entries), awaiting rekey to assigned numbers.
    slots: Vec<Option<EventHandle>>,
    rank_next: u64,
    now_us: u64,
}

/// Coordinator/worker handshake for one shard. The coordinator stores
/// the window number into `gen` after depositing a start (idle windows
/// are skipped, so `gen` may jump); the worker echoes it into `done`
/// after depositing an end (or, on stop, the shard state).
#[derive(Default)]
struct WorkerSlot {
    gen: AtomicU64,
    done: AtomicU64,
    /// The worker's thread handle, for unparking; set by the coordinator
    /// right after spawn, before the first `gen` store.
    thread: Mutex<Option<std::thread::Thread>>,
    start: Mutex<Option<WindowStart>>,
    end: Mutex<Option<WindowEnd>>,
    ret: Mutex<Option<ShardState>>,
}

/// Locks a mutex, shrugging off poison: the shared state is only touched
/// between handshake points, so a panicked peer cannot leave it torn.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// How long to busy-spin on a handshake before giving up the CPU.
/// Windows on the paper's topologies are a few events long (tens of µs
/// of work), so on a machine with a spare core per shard, parking in the
/// OS every window would dominate — spin. On an oversubscribed machine
/// (fewer cores than shards) spinning only steals cycles from the thread
/// being waited on — don't spin at all.
fn spin_budget(shards: usize) -> u32 {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > shards {
        10_000
    } else {
        0
    }
}

/// Worker side: waits until `gen` moves past `last` and returns its new
/// value. Spins `spin` times, then parks (the coordinator unparks after
/// every store).
fn worker_wait(slot: &WorkerSlot, last: u64, spin: u32) -> u64 {
    let mut spins = 0u32;
    loop {
        let g = slot.gen.load(Ordering::Acquire);
        if g != last {
            return g;
        }
        if spins < spin {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::park();
        }
    }
}

/// Coordinator side: waits until `counter` reaches `target`. The peer is
/// actively running a window, so spin/yield rather than park.
fn wait_done(counter: &AtomicU64, target: u64, spin: u32) {
    let mut spins = 0u32;
    while counter.load(Ordering::Acquire) < target {
        if spins < spin {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// The shard-side event sink: local events get provisional keys, cross
/// events are parked for the barrier. Both consume one creation slot so
/// the assignments vector stays index-aligned.
struct ShardSched<'a> {
    queue: &'a mut EventQueue<EventKind>,
    created: &'a mut Vec<CreatedMeta>,
    slots: &'a mut Vec<Option<EventHandle>>,
    node_owner: &'a [u8],
    switch_owner: &'a [u8],
    me: u8,
    rank_next: &'a mut u64,
}

impl EventSink for ShardSched<'_> {
    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let rank = *self.rank_next;
        *self.rank_next += 1;
        let dest = owner_of_event(&kind, self.node_owner, self.switch_owner);
        if dest == self.me {
            let handle = self.queue.insert(at.as_micros(), PENDING_BIT | rank, kind);
            self.created.push(CreatedMeta::Local);
            self.slots.push(Some(handle));
        } else {
            self.created.push(CreatedMeta::Cross {
                dest,
                at: at.as_micros(),
                kind,
            });
            self.slots.push(None);
        }
    }
}

/// Applies a window-start message: rekeys the previous window's surviving
/// provisional events to their assigned numbers, then lands the inbox.
fn apply_start(state: &mut ShardState, start: &mut WindowStart) {
    debug_assert_eq!(start.assignments.len(), state.slots.len());
    for (slot, &seq) in state.slots.iter().zip(start.assignments.iter()) {
        if let Some(handle) = slot {
            debug_assert_ne!(seq, UNASSIGNED);
            // A dead handle means the event already ran inside its
            // creation window; nothing left to rekey.
            let _ = state.queue.rekey(*handle, seq);
        }
    }
    state.slots.clear();
    for (at, seq, kind) in start.inbox.drain(..) {
        debug_assert_ne!(seq, UNASSIGNED);
        state.queue.insert(at, seq, kind);
    }
}

/// Runs one shard's share of the window `[.., t1)` and packages the
/// bookkeeping for the barrier.
fn run_window(
    state: &mut ShardState,
    node_owner: &[u8],
    switch_owner: &[u8],
    t1: u64,
) -> WindowEnd {
    let mut dispatch: Vec<DispatchRec> = Vec::new();
    let mut created: Vec<CreatedMeta> = Vec::new();
    let mut slots: Vec<Option<EventHandle>> = Vec::new();
    let rank_base = state.rank_next;
    let mut pops = 0u64;
    sink::install(state.now_us, Vec::new());
    loop {
        match state.queue.peek() {
            Some((at, _)) if at < t1 => {}
            _ => break,
        }
        let (at, key, kind) = state.queue.pop().expect("peeked");
        state.now_us = at;
        state.world.obs.set_now_us(at);
        let journal_before = sink::len();
        let logs_before = state.world.logs.len();
        let created_before = created.len();
        let mut sched = ShardSched {
            queue: &mut state.queue,
            created: &mut created,
            slots: &mut slots,
            node_owner,
            switch_owner,
            me: state.me,
            rank_next: &mut state.rank_next,
        };
        Exec {
            world: &mut state.world,
            now: SimTime(at),
            sink: &mut sched,
        }
        .dispatch(kind);
        pops += 1;
        let created_n = (created.len() - created_before) as u32;
        let journal_n = (sink::len() - journal_before) as u32;
        let logs_n = (state.world.logs.len() - logs_before) as u32;
        if created_n | journal_n | logs_n != 0 {
            let id = if key & PENDING_BIT != 0 {
                EvId::Pending(((key & !PENDING_BIT) - rank_base) as u32)
            } else {
                EvId::Global(key)
            };
            dispatch.push(DispatchRec {
                at,
                id,
                created: created_n,
                journal: journal_n,
                logs: logs_n,
            });
        }
    }
    let journal = sink::take();
    let logs = std::mem::take(&mut state.world.logs);
    let next_at = state.queue.peek().map(|(at, _)| at);
    state.slots = slots;
    WindowEnd {
        dispatch,
        created,
        journal,
        logs,
        next_at,
        pops,
    }
}

/// Worker thread: one shard, one handshake slot, engaged windows until
/// stop. Windows where this shard has nothing to do are skipped by the
/// coordinator, so the generation counter may jump.
fn worker(
    slot: &WorkerSlot,
    node_owner: &[u8],
    switch_owner: &[u8],
    spin: u32,
    mut state: ShardState,
) {
    let mut gen = 0u64;
    loop {
        gen = worker_wait(slot, gen, spin);
        let mut start = lock(&slot.start).take().expect("window start deposited");
        apply_start(&mut state, &mut start);
        if start.stop {
            *lock(&slot.ret) = Some(state);
            slot.done.store(gen, Ordering::Release);
            return;
        }
        let end = run_window(&mut state, node_owner, switch_owner, start.t1);
        *lock(&slot.end) = Some(end);
        slot.done.store(gen, Ordering::Release);
    }
}

/// Pre-split snapshot of a cross link's drop counters, so the merge can
/// combine the two clones' deltas without double counting.
struct CrossOrig {
    overflow_drops: u64,
    loss_drops: u64,
}

/// Carves the simulation's world and queue into per-shard states.
/// Cross-shard links are cloned into both bordering shards (each side
/// only drives its own transmit direction); everything else moves.
fn split(sim: &mut Simulation, plan: &Plan) -> (Vec<ShardState>, BTreeMap<usize, CrossOrig>) {
    let now_us = sim.now.as_micros();
    let mut states: Vec<ShardState> = (0..plan.shards)
        .map(|i| ShardState {
            me: i as u8,
            world: World {
                nodes: (0..sim.world.nodes.len()).map(|_| None).collect(),
                switches: (0..sim.world.switches.len()).map(|_| None).collect(),
                links: (0..sim.world.links.len()).map(|_| None).collect(),
                taps: (0..sim.world.taps.len()).map(|_| None).collect(),
                logs: Vec::new(),
                rng: sim.world.rng.clone(),
                obs: sim.world.obs.clone(),
                net: sim.world.net.clone(),
            },
            queue: EventQueue::new(),
            slots: Vec::new(),
            rank_next: 0,
            now_us,
        })
        .collect();
    for (i, slot) in sim.world.nodes.iter_mut().enumerate() {
        let owner = plan.node_owner[i] as usize;
        states[owner].world.nodes[i] = slot.take();
    }
    for (i, slot) in sim.world.switches.iter_mut().enumerate() {
        let owner = plan.switch_owner[i] as usize;
        states[owner].world.switches[i] = slot.take();
    }
    for (i, slot) in sim.world.taps.iter_mut().enumerate() {
        if let Some((tap, switch)) = slot.take() {
            let owner = plan.switch_owner[switch.0 as usize] as usize;
            states[owner].world.taps[i] = Some((tap, switch));
        }
    }
    let mut cross_orig = BTreeMap::new();
    for (i, slot) in sim.world.links.iter_mut().enumerate() {
        let Some((link, a, b)) = slot.take() else {
            continue;
        };
        let oa = owner_of_endpoint(&a, &plan.node_owner, &plan.switch_owner) as usize;
        let ob = owner_of_endpoint(&b, &plan.node_owner, &plan.switch_owner) as usize;
        if oa == ob {
            states[oa].world.links[i] = Some((link, a, b));
        } else {
            cross_orig.insert(
                i,
                CrossOrig {
                    overflow_drops: link.overflow_drops,
                    loss_drops: link.loss_drops,
                },
            );
            states[oa].world.links[i] = Some((link.clone(), a, b));
            states[ob].world.links[i] = Some((link, a, b));
        }
    }
    // Route the global queue: every entry already has a real sequence
    // number, so it lands in its owner's queue under a Global key.
    for (at, seq, kind) in sim.queue.drain_unordered() {
        let owner = owner_of_event(&kind, &plan.node_owner, &plan.switch_owner) as usize;
        states[owner].queue.insert(at, seq, kind);
    }
    (states, cross_orig)
}

/// Moves shard state back into the simulation after the final barrier.
fn merge(
    sim: &mut Simulation,
    states: Vec<ShardState>,
    plan: &Plan,
    cross_orig: &BTreeMap<usize, CrossOrig>,
) {
    // Cross-link clones, keyed by link index: the endpoint-a owner's copy
    // carries the authoritative a→b transmit state, the endpoint-b
    // owner's copy the b→a state.
    let mut cross_a: BTreeMap<usize, Link> = BTreeMap::new();
    let mut cross_b: BTreeMap<usize, Link> = BTreeMap::new();
    for state in states {
        let me = state.me;
        for (i, slot) in state.world.nodes.into_iter().enumerate() {
            if let Some(node) = slot {
                sim.world.nodes[i] = Some(node);
            }
        }
        for (i, slot) in state.world.switches.into_iter().enumerate() {
            if let Some(sw) = slot {
                sim.world.switches[i] = Some(sw);
            }
        }
        for (i, slot) in state.world.taps.into_iter().enumerate() {
            if let Some(tap) = slot {
                sim.world.taps[i] = Some(tap);
            }
        }
        for (i, slot) in state.world.links.into_iter().enumerate() {
            let Some((link, a, b)) = slot else { continue };
            let oa = owner_of_endpoint(&a, &plan.node_owner, &plan.switch_owner);
            let ob = owner_of_endpoint(&b, &plan.node_owner, &plan.switch_owner);
            if oa == ob {
                sim.world.links[i] = Some((link, a, b));
            } else if me == oa {
                cross_a.insert(i, link);
                sim.world.links[i] = Some((Link::new(Default::default()), a, b));
            } else {
                cross_b.insert(i, link);
            }
        }
        debug_assert!(state.world.logs.is_empty(), "logs outside a window");
        let mut queue = state.queue;
        for (at, seq, kind) in queue.drain_unordered() {
            debug_assert_eq!(seq & PENDING_BIT, 0, "provisional key survived the run");
            sim.queue.insert(at, seq, kind);
        }
    }
    for (i, side_a) in cross_a {
        let side_b = cross_b.remove(&i).expect("both clones of a cross link");
        let orig = &cross_orig[&i];
        let mut merged = side_a;
        merged.tx_ba = side_b.tx_ba;
        merged.overflow_drops = merged.overflow_drops + side_b.overflow_drops - orig.overflow_drops;
        merged.loss_drops = merged.loss_drops + side_b.loss_drops - orig.loss_drops;
        let entry = sim.world.links[i].as_mut().expect("placeholder installed");
        entry.0 = merged;
    }
    debug_assert!(cross_b.is_empty(), "unmatched cross-link clone");
}

/// Replays one window's dispatch logs in global `(time, seq)` order,
/// assigning sequence numbers to created events exactly as the sequential
/// engine would have, routing cross deliveries, and splicing journal and
/// log runs into sequential order. `ends[i]` is `None` for shards that
/// were skipped this window (nothing runnable, no inbox, no assignments).
#[allow(clippy::too_many_arguments)]
fn replay_merge(
    seq: &mut u64,
    ends: &mut [Option<WindowEnd>],
    assign_next: &mut [Vec<u64>],
    inbox_next: &mut [Vec<(u64, u64, EventKind)>],
    merged_journal: &mut Vec<TimedEvent>,
    merged_logs: &mut Vec<(SimTime, NodeId, String)>,
) {
    let k = ends.len();
    let mut d = vec![0usize; k];
    let mut c = vec![0usize; k];
    let mut j = vec![0usize; k];
    let mut l = vec![0usize; k];
    for (i, end) in ends.iter().enumerate() {
        if let Some(end) = end {
            debug_assert!(assign_next[i].is_empty(), "stale assignments");
            assign_next[i].resize(end.created.len(), UNASSIGNED);
        }
    }
    loop {
        // Smallest (time, seq) head across shards. A Pending head is
        // always resolvable: its creator dispatched strictly earlier in
        // the same shard's log, so its number was assigned already.
        let mut best: Option<(u64, u64, usize)> = None;
        for i in 0..k {
            let Some(rec) = ends[i].as_ref().and_then(|e| e.dispatch.get(d[i])) else {
                continue;
            };
            let s = match rec.id {
                EvId::Global(s) => s,
                EvId::Pending(idx) => {
                    let s = assign_next[i][idx as usize];
                    debug_assert_ne!(s, UNASSIGNED, "created event popped before creator");
                    s
                }
            };
            if best.is_none_or(|(at, bs, _)| (rec.at, s) < (at, bs)) {
                best = Some((rec.at, s, i));
            }
        }
        let Some((_, _, i)) = best else { break };
        let end = ends[i].as_mut().expect("best came from an engaged shard");
        let rec = &end.dispatch[d[i]];
        let (created_n, journal_n, logs_n) = (
            rec.created as usize,
            rec.journal as usize,
            rec.logs as usize,
        );
        let run = c[i]..c[i] + created_n;
        for (slot, meta) in assign_next[i][run.clone()]
            .iter_mut()
            .zip(&mut end.created[run])
        {
            let s = *seq;
            *seq += 1;
            *slot = s;
            let meta = std::mem::replace(meta, CreatedMeta::Local);
            if let CreatedMeta::Cross { dest, at, kind } = meta {
                inbox_next[dest as usize].push((at, s, kind));
            }
        }
        c[i] += created_n;
        merged_journal.extend_from_slice(&end.journal[j[i]..j[i] + journal_n]);
        j[i] += journal_n;
        merged_logs.extend_from_slice(&end.logs[l[i]..l[i] + logs_n]);
        l[i] += logs_n;
        d[i] += 1;
    }
    for (i, end) in ends.iter().enumerate() {
        if let Some(end) = end {
            debug_assert_eq!(d[i], end.dispatch.len());
            debug_assert_eq!(c[i], end.created.len(), "created run not consumed");
            debug_assert_eq!(j[i], end.journal.len(), "journal run not consumed");
            debug_assert_eq!(l[i], end.logs.len(), "log run not consumed");
        }
    }
}

/// Runs the simulation to `deadline` on `sim.threads` workers, returning
/// the number of events processed, or `None` when the topology yields no
/// usable plan (caller falls back to the sequential loop). Eligibility
/// (tracing off, lossless links, clock in sync) is checked by the caller.
pub(crate) fn run_parallel(sim: &mut Simulation, deadline: SimTime) -> Option<u64> {
    let plan = make_plan(&sim.world, sim.threads)?;
    let deadline_us = deadline.as_micros();
    // Exclusive window end cap: events *at* the deadline still run.
    let horizon = deadline_us.saturating_add(1);
    let (mut states, cross_orig) = split(sim, &plan);
    let shards = plan.shards;
    let mut next_at: Vec<Option<u64>> = states
        .iter_mut()
        .map(|s| s.queue.peek().map(|(at, _)| at))
        .collect();
    let mut assign_next: Vec<Vec<u64>> = (0..shards).map(|_| Vec::new()).collect();
    let mut inbox_next: Vec<Vec<(u64, u64, EventKind)>> = (0..shards).map(|_| Vec::new()).collect();
    let mut merged_journal: Vec<TimedEvent> = Vec::new();
    let mut merged_logs: Vec<(SimTime, NodeId, String)> = Vec::new();
    let mut pops_total = 0u64;
    let mut final_states: Vec<ShardState> = Vec::with_capacity(shards);
    let slots: Vec<WorkerSlot> = (0..shards).map(|_| WorkerSlot::default()).collect();
    let spin = spin_budget(shards);
    std::thread::scope(|scope| {
        let mut rest = states.split_off(1);
        let mut state0 = states.pop().expect("shard zero");
        rest.reverse();
        for slot in slots.iter().skip(1) {
            let state = rest.pop().expect("one state per shard");
            let (node_owner, switch_owner) = (&plan.node_owner[..], &plan.switch_owner[..]);
            let handle = scope.spawn(move || worker(slot, node_owner, switch_owner, spin, state));
            *lock(&slot.thread) = Some(handle.thread().clone());
        }
        // Deposits a start and signals worker `i` (unpark is a no-op for
        // spinning workers, a wake-up for parked ones).
        let signal = |i: usize, gen: u64, start: WindowStart| {
            *lock(&slots[i].start) = Some(start);
            slots[i].gen.store(gen, Ordering::Release);
            if let Some(t) = lock(&slots[i].thread).as_ref() {
                t.unpark();
            }
        };
        let mut gen = 0u64;
        loop {
            let mut t0: Option<u64> = None;
            for i in 0..shards {
                let shard_min = inbox_next[i]
                    .iter()
                    .map(|&(at, _, _)| at)
                    .chain(next_at[i])
                    .min();
                t0 = match (t0, shard_min) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let stop = t0.is_none_or(|t0| t0 > deadline_us);
            let t1 = if stop {
                0
            } else {
                let t0 = t0.expect("not stopping");
                plan.lookahead_us
                    .map_or(horizon, |l| horizon.min(t0.saturating_add(l)))
            };
            gen += 1;
            if stop {
                // Final window: every shard is engaged so outstanding
                // assignments/inbox land before states come home.
                for i in 1..shards {
                    let start = WindowStart {
                        stop,
                        t1,
                        assignments: std::mem::take(&mut assign_next[i]),
                        inbox: std::mem::take(&mut inbox_next[i]),
                    };
                    signal(i, gen, start);
                }
                let mut start0 = WindowStart {
                    stop,
                    t1,
                    assignments: std::mem::take(&mut assign_next[0]),
                    inbox: std::mem::take(&mut inbox_next[0]),
                };
                apply_start(&mut state0, &mut start0);
                final_states.push(state0);
                for slot in slots.iter().skip(1) {
                    wait_done(&slot.done, gen, spin);
                    final_states.push(lock(&slot.ret).take().expect("state returned"));
                }
                return;
            }
            // A shard participates in the window only if it has something
            // to do: events before t1, inbox deliveries, or provisional
            // keys awaiting their assigned numbers. Everyone else is
            // skipped without a handshake — on the paper's topologies
            // most shards are idle in most 50 µs windows (a PLC polls
            // every 100 ms), so this is what keeps barriers cheap.
            let active: Vec<bool> = (0..shards)
                .map(|i| {
                    !assign_next[i].is_empty()
                        || !inbox_next[i].is_empty()
                        || next_at[i].is_some_and(|at| at < t1)
                })
                .collect();
            for i in 1..shards {
                if active[i] {
                    let start = WindowStart {
                        stop,
                        t1,
                        assignments: std::mem::take(&mut assign_next[i]),
                        inbox: std::mem::take(&mut inbox_next[i]),
                    };
                    signal(i, gen, start);
                }
            }
            let mut ends: Vec<Option<WindowEnd>> = (0..shards).map(|_| None).collect();
            if active[0] {
                let mut start0 = WindowStart {
                    stop,
                    t1,
                    assignments: std::mem::take(&mut assign_next[0]),
                    inbox: std::mem::take(&mut inbox_next[0]),
                };
                apply_start(&mut state0, &mut start0);
                ends[0] = Some(run_window(
                    &mut state0,
                    &plan.node_owner,
                    &plan.switch_owner,
                    t1,
                ));
            }
            for i in 1..shards {
                if active[i] {
                    wait_done(&slots[i].done, gen, spin);
                    ends[i] = Some(lock(&slots[i].end).take().expect("window end deposited"));
                }
            }
            replay_merge(
                &mut sim.seq,
                &mut ends,
                &mut assign_next,
                &mut inbox_next,
                &mut merged_journal,
                &mut merged_logs,
            );
            for (i, end) in ends.iter().enumerate() {
                if let Some(end) = end {
                    next_at[i] = end.next_at;
                    pops_total += end.pops;
                }
            }
        }
    });
    merge(sim, final_states, &plan, &cross_orig);
    sim.world.obs.journal_extend(merged_journal);
    sim.world.logs.extend(merged_logs);
    Some(pops_total)
}
