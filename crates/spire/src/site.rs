//! Multi-site topologies: where replicas, proxies, and HMIs live.
//!
//! The single-site deployments of §IV/§V place every SCADA-master replica
//! in one control center — losing that site loses the whole system. The
//! wide-area Spire configurations distribute the same six plant replicas
//! across several sites (control centers that can host proxies and HMIs,
//! plus data centers that host only replicas), connected by the Spines
//! WAN overlays of [`spines::wan`]. [`SiteTopology`] describes such a
//! placement; [`SiteTopology::survival_after_losing`] answers the
//! question E13 measures: *what happens to ordering when a whole site
//! drops off the map?*
//!
//! Three placements of the plant's `n = 6` (`f = 1, k = 1`) replicas are
//! provided, matching the configurations the failover experiment runs:
//!
//! * [`SiteTopology::six_at_one`] — `6@1`: everything in one site. Site
//!   loss is total; the baseline the wide-area placements improve on.
//! * [`SiteTopology::three_plus_three`] — `3+3`: two control centers.
//!   Losing either leaves 3 survivors, below the static ordering quorum
//!   of 4 — the survivors continue in a degraded membership epoch
//!   (`f' = 0`, majority quorum) installed by the management plane.
//! * [`SiteTopology::two_two_one_one`] — `2+2+1+1`: two control centers
//!   and two data centers. Losing any one site leaves at least 4
//!   survivors — the native quorum still meets and no reconfiguration
//!   is needed at all.

use prime::types::{Config as PrimeConfig, Membership};
use simnet::time::SimDuration;

/// What a site is allowed to host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SiteKind {
    /// Hosts replicas and homes proxies and HMIs (operations staff work
    /// here).
    ControlCenter,
    /// Hosts replicas only (rented rack space; no field devices, no
    /// operators).
    DataCenter,
}

/// One site of a wide-area deployment.
#[derive(Clone, Debug)]
pub struct Site {
    /// Human-readable name (`"cc-a"`, `"dc-1"`, …).
    pub name: String,
    /// What the site may host.
    pub kind: SiteKind,
    /// Replica ids homed here (disjoint across sites, covering `0..n`).
    pub replicas: Vec<u32>,
    /// One-way propagation delay of this site's WAN uplink.
    pub wan_latency: SimDuration,
    /// Independent frame-loss probability of this site's WAN uplink.
    pub wan_loss: f64,
}

/// What ordering can still do after an entire site is lost.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SurvivalMode {
    /// Enough survivors remain for the static `2f + k + 1` quorum: the
    /// protocol keeps running unmodified, no reconfiguration needed.
    NativeQuorum,
    /// Too few survivors for the native quorum, but at least two: the
    /// management plane installs this degraded membership epoch
    /// (`f' = 0`, majority quorum) and ordering continues without
    /// intrusion tolerance until the site heals.
    DegradedEpoch(Membership),
    /// Fewer than two survivors — no meaningful replication remains and
    /// the system correctly reports loss of liveness.
    Lost,
}

/// A named multi-site placement of one deployment's replicas.
#[derive(Clone, Debug)]
pub struct SiteTopology {
    /// The sites, in declaration order (site indices are positions here).
    pub sites: Vec<Site>,
}

impl SiteTopology {
    /// `6@1`: all six plant replicas in a single control center. The
    /// degenerate "wide-area" placement — used by E13 as the baseline
    /// that demonstrably does *not* survive a site loss.
    pub fn six_at_one() -> Self {
        SiteTopology {
            sites: vec![Site {
                name: "cc-a".into(),
                kind: SiteKind::ControlCenter,
                replicas: (0..6).collect(),
                wan_latency: SimDuration::from_micros(0),
                wan_loss: 0.0,
            }],
        }
    }

    /// `3+3`: two control centers with three replicas each. Survives a
    /// site loss only by falling back to a degraded membership epoch.
    pub fn three_plus_three() -> Self {
        SiteTopology {
            sites: vec![
                Site {
                    name: "cc-a".into(),
                    kind: SiteKind::ControlCenter,
                    replicas: vec![0, 1, 2],
                    wan_latency: SimDuration::from_micros(1_000),
                    wan_loss: 0.0,
                },
                Site {
                    name: "cc-b".into(),
                    kind: SiteKind::ControlCenter,
                    replicas: vec![3, 4, 5],
                    wan_latency: SimDuration::from_micros(2_000),
                    wan_loss: 0.0005,
                },
            ],
        }
    }

    /// `2+2+1+1`: two control centers with two replicas each plus two
    /// single-replica data centers. Any one site can be lost while the
    /// native `2f + k + 1 = 4` quorum still meets.
    pub fn two_two_one_one() -> Self {
        SiteTopology {
            sites: vec![
                Site {
                    name: "cc-a".into(),
                    kind: SiteKind::ControlCenter,
                    replicas: vec![0, 1],
                    wan_latency: SimDuration::from_micros(1_000),
                    wan_loss: 0.0,
                },
                Site {
                    name: "cc-b".into(),
                    kind: SiteKind::ControlCenter,
                    replicas: vec![2, 3],
                    wan_latency: SimDuration::from_micros(2_000),
                    wan_loss: 0.0,
                },
                Site {
                    name: "dc-1".into(),
                    kind: SiteKind::DataCenter,
                    replicas: vec![4],
                    wan_latency: SimDuration::from_micros(3_000),
                    wan_loss: 0.0005,
                },
                Site {
                    name: "dc-2".into(),
                    kind: SiteKind::DataCenter,
                    replicas: vec![5],
                    wan_latency: SimDuration::from_micros(4_000),
                    wan_loss: 0.001,
                },
            ],
        }
    }

    /// The conventional label: `"6@1"`, `"3+3"`, `"2+2+1+1"`.
    pub fn label(&self) -> String {
        if self.sites.len() == 1 {
            format!("{}@1", self.sites[0].replicas.len())
        } else {
            self.sites
                .iter()
                .map(|s| s.replicas.len().to_string())
                .collect::<Vec<_>>()
                .join("+")
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total replicas across all sites.
    pub fn replica_count(&self) -> u32 {
        self.sites.iter().map(|s| s.replicas.len() as u32).sum()
    }

    /// The site homing replica `r`, if any.
    pub fn site_of_replica(&self, r: u32) -> Option<usize> {
        self.sites.iter().position(|s| s.replicas.contains(&r))
    }

    /// Replica ids homed at `site`.
    pub fn replicas_of(&self, site: usize) -> &[u32] {
        &self.sites[site].replicas
    }

    /// Indices of the control-center sites, in declaration order.
    pub fn control_centers(&self) -> Vec<usize> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == SiteKind::ControlCenter)
            .map(|(i, _)| i)
            .collect()
    }

    /// The control center homing proxy `p` (round-robin over control
    /// centers — field connectivity terminates at operations sites).
    pub fn home_of_proxy(&self, p: u32) -> usize {
        let ccs = self.control_centers();
        assert!(!ccs.is_empty(), "a topology needs a control center");
        ccs[p as usize % ccs.len()]
    }

    /// The control center homing HMI `h` (round-robin over control
    /// centers).
    pub fn home_of_hmi(&self, h: u32) -> usize {
        let ccs = self.control_centers();
        assert!(!ccs.is_empty(), "a topology needs a control center");
        ccs[h as usize % ccs.len()]
    }

    /// Replica ids that remain after losing `site` entirely.
    pub fn survivors_after_losing(&self, site: usize) -> Vec<u32> {
        let mut survivors: Vec<u32> = self
            .sites
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != site)
            .flat_map(|(_, s)| s.replicas.iter().copied())
            .collect();
        survivors.sort_unstable();
        survivors
    }

    /// What ordering can still do (under `prime`'s static configuration)
    /// after losing `site`: keep the native quorum, fall back to a
    /// degraded membership epoch, or report loss of liveness.
    pub fn survival_after_losing(&self, prime: &PrimeConfig, site: usize) -> SurvivalMode {
        let survivors = self.survivors_after_losing(site);
        let m = survivors.len() as u32;
        if m >= prime.ordering_quorum() {
            SurvivalMode::NativeQuorum
        } else if m >= 2 {
            SurvivalMode::DegradedEpoch(Membership::degraded(survivors))
        } else {
            SurvivalMode::Lost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_convention() {
        assert_eq!(SiteTopology::six_at_one().label(), "6@1");
        assert_eq!(SiteTopology::three_plus_three().label(), "3+3");
        assert_eq!(SiteTopology::two_two_one_one().label(), "2+2+1+1");
    }

    #[test]
    fn placements_cover_all_plant_replicas_disjointly() {
        for topo in [
            SiteTopology::six_at_one(),
            SiteTopology::three_plus_three(),
            SiteTopology::two_two_one_one(),
        ] {
            assert_eq!(topo.replica_count(), 6, "{}", topo.label());
            let mut seen = std::collections::BTreeSet::new();
            for site in &topo.sites {
                for &r in &site.replicas {
                    assert!(seen.insert(r), "{}: replica {r} homed twice", topo.label());
                }
            }
            assert_eq!(seen, (0..6).collect(), "{}", topo.label());
            for r in 0..6 {
                assert!(topo.site_of_replica(r).is_some());
            }
        }
    }

    #[test]
    fn survival_math_matches_the_paper_configurations() {
        let prime = PrimeConfig::plant();
        // 6@1: losing the only site is fatal.
        let one = SiteTopology::six_at_one();
        assert_eq!(one.survival_after_losing(&prime, 0), SurvivalMode::Lost);
        // 3+3: three survivors < quorum 4 → degraded epoch, f'=0, q'=2.
        let two = SiteTopology::three_plus_three();
        match two.survival_after_losing(&prime, 1) {
            SurvivalMode::DegradedEpoch(m) => {
                assert_eq!(m.members(), &[0, 1, 2]);
                assert_eq!(m.f, 0);
                assert_eq!(m.ordering_quorum(), 2);
            }
            other => panic!("expected degraded epoch, got {other:?}"),
        }
        // 2+2+1+1: any single site loss keeps the native quorum.
        let four = SiteTopology::two_two_one_one();
        for site in 0..4 {
            assert_eq!(
                four.survival_after_losing(&prime, site),
                SurvivalMode::NativeQuorum,
                "losing site {site}"
            );
        }
    }

    #[test]
    fn proxies_and_hmis_home_only_at_control_centers() {
        let topo = SiteTopology::two_two_one_one();
        assert_eq!(topo.control_centers(), vec![0, 1]);
        for p in 0..17 {
            let home = topo.home_of_proxy(p);
            assert_eq!(topo.sites[home].kind, SiteKind::ControlCenter);
        }
        // Round-robin spreads consecutive proxies across both centers.
        assert_ne!(topo.home_of_proxy(0), topo.home_of_proxy(1));
        for h in 0..3 {
            let home = topo.home_of_hmi(h);
            assert_eq!(topo.sites[home].kind, SiteKind::ControlCenter);
        }
    }

    #[test]
    fn survivors_exclude_exactly_the_lost_site() {
        let topo = SiteTopology::three_plus_three();
        assert_eq!(topo.survivors_after_losing(0), vec![3, 4, 5]);
        assert_eq!(topo.survivors_after_losing(1), vec![0, 1, 2]);
        assert_eq!(topo.replicas_of(1), &[3, 4, 5]);
    }
}
