//! Experiment E11 — ordering saturation: ramp the client update rate
//! against a 6-replica (f=1, k=1) Prime cluster and find where bounded
//! delay ends.
//!
//! The paper's performance claim (§V) is qualitative: Prime delivers
//! bounded-delay ordering, so latency stays flat as load grows — until
//! the system saturates and queueing takes over. The deployment's LAN
//! fabric in `prime::harness::Cluster` is infinitely fast by default, so
//! this experiment enables its finite outbound-capacity model
//! ([`Cluster::set_out_cost`]): every message a replica sends occupies
//! its NIC for a fixed serialization cost, and once the offered load's
//! message volume exceeds what the NIC drains, departures queue and
//! end-to-end latency grows without bound — the knee.

use prime::harness::Cluster;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use simnet::time::{SimDuration, SimTime};

/// Per-message NIC serialization cost for the capacity model. With n=6,
/// each submitted update costs every replica a 5-message PoRequest
/// broadcast (~750 us of lane time), plus the fixed ARU/PrePrepare/
/// Prepare/Commit cadence, so the lane saturates between 800 and 1600
/// updates/s — inside the default ramp.
const OUT_COST: SimDuration = SimDuration::from_micros(150);

/// Offered-load window per step.
const WINDOW: SimDuration = SimDuration::from_secs(2);

/// Drain time after the window so every accepted update executes.
const SETTLE: SimDuration = SimDuration::from_secs(3);

/// Protocol knobs for a saturation ramp variant: the legacy per-update
/// dissemination path, or Merkle-batched dissemination with pipelined
/// sequencing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaturationOpts {
    /// `Config::batch_max` (0 = legacy per-update PoRequests).
    pub batch_max: u32,
    /// `Config::pipeline` (1 = serialized ordering).
    pub pipeline: u32,
}

impl SaturationOpts {
    /// The unbatched reference configuration (the seed repo's E11).
    pub fn legacy() -> Self {
        SaturationOpts {
            batch_max: 0,
            pipeline: 1,
        }
    }

    /// The batched configuration benchmarked in EXPERIMENTS.md: up to 16
    /// updates per Merkle batch, 4 sequences in flight.
    pub fn batched() -> Self {
        SaturationOpts {
            batch_max: 16,
            pipeline: 4,
        }
    }
}

fn e11_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        // Far beyond window + settle: overload must show up as queueing,
        // not as a view change blaming the (correct) leader.
        suspect_timeout: SimDuration::from_secs(30),
        checkpoint_interval: 50,
        catchup_timeout: SimDuration::from_secs(10),
    }
}

/// One step of the saturation ramp.
#[derive(Clone, Debug)]
pub struct SaturationStep {
    /// Offered client updates per second.
    pub offered_per_s: u64,
    /// Updates submitted during the window.
    pub submitted: u64,
    /// Updates executed by replica 0 (all of them, after the drain).
    pub executed: u64,
    /// Executed updates divided by first-submit→last-execute span.
    pub ordered_per_s: f64,
    /// Median submit→execute latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst latency, microseconds.
    pub max_us: u64,
    /// Simulated time the step consumed (warm-up + window + settle).
    pub sim_elapsed_us: u64,
    /// Per-step cost attribution, present when the profiler is enabled.
    pub prof: Option<obs::prof::Profile>,
}

/// The full E11 ramp at one seed.
#[derive(Clone, Debug)]
pub struct SaturationRun {
    /// The seed the ramp ran at.
    pub seed: u64,
    /// The protocol variant the ramp ran with.
    pub opts: SaturationOpts,
    /// One step per offered rate, in ramp order.
    pub steps: Vec<SaturationStep>,
}

impl SaturationRun {
    /// Index of the first step whose median latency exceeds 3x the
    /// first step's median — where bounded delay ends.
    pub fn knee_index(&self) -> Option<usize> {
        let base = self.steps.first()?.p50_us.max(1);
        self.steps.iter().position(|s| s.p50_us > 3 * base)
    }

    /// The paper's qualitative shape: pre-knee steps stay flat (median
    /// within 2x of the base step) while ordering keeps up with the
    /// offered load; then a knee exists where latency takes off.
    pub fn is_flat_then_knee(&self) -> bool {
        let Some(k) = self.knee_index() else {
            return false;
        };
        if k == 0 {
            return false;
        }
        let base = self.steps[0].p50_us.max(1);
        self.steps[..k]
            .iter()
            .all(|s| s.p50_us <= 2 * base && s.ordered_per_s >= 0.9 * s.offered_per_s as f64)
    }
}

/// The default offered-load ramp (updates per second).
pub fn e11_default_rates() -> Vec<u64> {
    vec![50, 100, 200, 400, 800, 1600]
}

/// The extended ramp for the batched configuration: the legacy rates
/// continued past the old knee (1600/s unbatched) far enough that the
/// batched knee lands inside the sweep.
pub fn e11_batched_rates() -> Vec<u64> {
    vec![50, 100, 200, 400, 800, 1600, 3200, 6400, 9600, 19200, 25600]
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_step(seed: u64, rate: u64, opts: SaturationOpts) -> SaturationStep {
    if obs::prof::enabled() {
        // Carve this step's charges out of the thread-wide profile so the
        // attribution report can telescope each step against its own
        // simulated time (the cluster clock starts at zero).
        let (mut step, prof) = obs::prof::capture(|| run_step_inner(seed, rate, opts));
        step.prof = Some(prof);
        step
    } else {
        run_step_inner(seed, rate, opts)
    }
}

fn run_step_inner(seed: u64, rate: u64, opts: SaturationOpts) -> SaturationStep {
    // Fresh cluster per step so steps are independent and any order of
    // rates reproduces the same numbers.
    let cfg = if opts.batch_max > 0 || opts.pipeline > 1 {
        PrimeConfig::plant().with_batching(opts.batch_max, opts.pipeline)
    } else {
        PrimeConfig::plant()
    };
    let mut c = Cluster::new(cfg, 1);
    c.set_timing(e11_timing());
    c.set_out_cost(OUT_COST);
    // Warm up past the first ARU exchange; the seed enters as a
    // sub-millisecond phase against the 10 ms protocol cadence (the
    // cluster fabric is otherwise deterministic).
    c.run_for(SimDuration::from_millis(50) + SimDuration::from_micros(seed % 1_000));

    let gap = SimDuration::from_micros(1_000_000 / rate);
    let submitted = (rate * WINDOW.as_micros() / 1_000_000).max(1);
    let mut submit_at: Vec<SimTime> = Vec::with_capacity(submitted as usize);
    for i in 0..submitted {
        submit_at.push(c.now());
        c.submit(0, format!("s{seed}k{i}=1"));
        c.run_for(gap);
    }
    c.run_for(SETTLE);

    // Latency per update from replica 0's execution log; client_seq is
    // 1-based and dense, so it indexes the submit-time vector directly.
    let mut latencies: Vec<u64> = Vec::with_capacity(submitted as usize);
    let mut last_exec = SimTime::ZERO;
    for (j, &(_, client, client_seq)) in c.exec_logs[0].iter().enumerate() {
        if client != 0 || client_seq == 0 || client_seq > submitted {
            continue;
        }
        let at = c.exec_times[0][j];
        latencies.push(at.since(submit_at[(client_seq - 1) as usize]).as_micros());
        if at > last_exec {
            last_exec = at;
        }
    }
    latencies.sort_unstable();
    let executed = latencies.len() as u64;
    let span = if executed > 0 {
        last_exec.since(submit_at[0]).as_secs_f64()
    } else {
        WINDOW.as_secs_f64()
    };
    SaturationStep {
        offered_per_s: rate,
        submitted,
        executed,
        ordered_per_s: executed as f64 / span.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p90_us: percentile(&latencies, 0.90),
        p99_us: percentile(&latencies, 0.99),
        max_us: percentile(&latencies, 1.0),
        sim_elapsed_us: c.now().as_micros(),
        prof: None,
    }
}

/// E11 — run the ramp: one fresh 6-replica cluster per offered rate, a
/// fixed submission window, then a drain; report throughput and latency
/// percentiles per step. Runs the legacy (unbatched) configuration.
pub fn e11_saturation(seed: u64, rates: &[u64]) -> SaturationRun {
    e11_saturation_with(seed, rates, SaturationOpts::legacy())
}

/// E11 with explicit protocol knobs (`spire-sim e11 --batch N --pipeline K`).
pub fn e11_saturation_with(seed: u64, rates: &[u64], opts: SaturationOpts) -> SaturationRun {
    SaturationRun {
        seed,
        opts,
        steps: rates.iter().map(|&r| run_step(seed, r, opts)).collect(),
    }
}

/// Renders the ramp as a table with the knee called out.
pub fn render_saturation(run: &SaturationRun) -> String {
    use std::fmt::Write as _;
    let mut out = format!("E11 ordering saturation (seed {})\n", run.seed);
    if run.opts.batch_max > 0 || run.opts.pipeline > 1 {
        let _ = writeln!(
            out,
            "batching: batch_max={} pipeline={}",
            run.opts.batch_max, run.opts.pipeline
        );
    }
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "offered/s", "ordered/s", "executed", "p50_us", "p90_us", "p99_us", "max_us"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for s in &run.steps {
        let _ = writeln!(
            out,
            "{:>10} {:>10.0} {:>10} {:>9} {:>9} {:>9} {:>9}",
            s.offered_per_s, s.ordered_per_s, s.executed, s.p50_us, s.p90_us, s.p99_us, s.max_us
        );
    }
    match run.knee_index() {
        Some(k) => {
            let _ = writeln!(
                out,
                "knee at {} updates/s (flat-then-knee: {})",
                run.steps[k].offered_per_s,
                run.is_flat_then_knee()
            );
        }
        None => {
            let _ = writeln!(out, "no knee within the ramp");
        }
    }
    out
}

/// Collapses a step profile into protocol-level aggregates and returns
/// the dominant one (preorder/order/catchup/execute) by charged
/// simulated time. Timer cadence and idle are excluded: at saturation
/// the question is which protocol stage eats the lane, not how long the
/// cluster sat between events.
fn dominant_protocol_phase(prof: &obs::prof::Profile) -> Option<(&'static str, u64)> {
    let mut groups: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for (stack, cost) in prof.rows() {
        let group = if stack.starts_with("prime;preorder") {
            "prime;preorder"
        } else if stack.starts_with("prime;order") {
            "prime;order"
        } else if stack.starts_with("prime;catchup") {
            "prime;catchup"
        } else if stack.starts_with("prime;execute") {
            "prime;execute"
        } else {
            continue;
        };
        *groups.entry(group).or_default() += cost.time_us;
    }
    groups.into_iter().max_by_key(|&(_, t)| t)
}

/// Renders the per-step cost attribution for a profiled ramp
/// (`spire-sim e11 --prof`): one markdown table per step, each with an
/// exact telescoping verdict against that step's simulated time, plus a
/// knee-attribution summary naming the protocol phase that dominates at
/// and past the knee.
pub fn saturation_attribution(run: &SaturationRun) -> String {
    use std::fmt::Write as _;
    let mut out = format!("## E11 cost attribution (seed {})\n", run.seed);
    let knee = run.knee_index();
    for (i, s) in run.steps.iter().enumerate() {
        let Some(prof) = &s.prof else { continue };
        let marker = match knee {
            Some(k) if i == k => " — knee",
            Some(k) if i > k => " — past knee",
            _ => "",
        };
        let _ = writeln!(out, "\n### {} updates/s{marker}\n", s.offered_per_s);
        out.push_str(&obs::report::attribution_markdown(
            prof,
            Some(s.sim_elapsed_us),
        ));
        if let Some((group, t)) = dominant_protocol_phase(prof) {
            let _ = writeln!(out, "dominant protocol phase: {group} ({t} us)");
        }
    }
    out.push('\n');
    match knee {
        Some(k) => {
            let mut agg = obs::prof::Profile::new();
            for s in &run.steps[k..] {
                if let Some(p) = &s.prof {
                    agg.merge(p);
                }
            }
            match dominant_protocol_phase(&agg) {
                Some((group, t)) => {
                    let _ = writeln!(
                        out,
                        "knee attribution: at and past the knee ({} updates/s), \
                         {group} dominates protocol cost with {t} us of charged \
                         simulated time",
                        run.steps[k].offered_per_s
                    );
                }
                None => {
                    let _ = writeln!(out, "knee attribution: no profiled steps at the knee");
                }
            }
        }
        None => {
            let _ = writeln!(
                out,
                "no knee within the ramp; attribution reflects pre-saturation cost"
            );
        }
    }
    out
}

/// Serializes the ramp as JSON (`spire-sim e11 --json FILE`).
pub fn saturation_json(run: &SaturationRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"schema\": \"spire-e11-v2\",\n");
    let _ = writeln!(out, "  \"seed\": {},", run.seed);
    let _ = writeln!(
        out,
        "  \"batch_max\": {},\n  \"pipeline\": {},",
        run.opts.batch_max, run.opts.pipeline
    );
    let _ = writeln!(
        out,
        "  \"knee_offered_per_s\": {},",
        run.knee_index()
            .map_or("null".into(), |k| run.steps[k].offered_per_s.to_string())
    );
    let _ = writeln!(out, "  \"flat_then_knee\": {},", run.is_flat_then_knee());
    out.push_str("  \"steps\": [\n");
    for (i, s) in run.steps.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"offered_per_s\": {}, \"ordered_per_s\": {:.1}, \"executed\": {}, \
             \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            s.offered_per_s, s.ordered_per_s, s.executed, s.p50_us, s.p90_us, s.p99_us, s.max_us
        );
        out.push_str(if i + 1 < run.steps.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_step_runs_and_orders_everything() {
        let s = run_step(1, 50, SaturationOpts::legacy());
        assert_eq!(s.submitted, 100);
        assert_eq!(s.executed, s.submitted, "drain executes every update");
        assert!(s.p50_us > 0 && s.p50_us <= s.p99_us && s.p99_us <= s.max_us);
    }

    #[test]
    fn batched_step_orders_everything_with_comparable_latency() {
        let legacy = run_step(1, 50, SaturationOpts::legacy());
        let batched = run_step(1, 50, SaturationOpts::batched());
        assert_eq!(batched.submitted, 100);
        assert_eq!(
            batched.executed, batched.submitted,
            "no member lost to batching"
        );
        // Pre-knee the batch rate-limiter flushes singletons immediately,
        // so tail latency stays in the same regime as the legacy path.
        assert!(
            batched.p99_us <= 2 * legacy.p99_us.max(1),
            "batched p99 {} vs legacy p99 {}",
            batched.p99_us,
            legacy.p99_us
        );
    }

    #[test]
    fn profiled_step_telescopes_exactly() {
        obs::prof::set_enabled(true);
        let s = run_step(7, 50, SaturationOpts::legacy());
        obs::prof::set_enabled(false);
        let _ = obs::prof::take();
        let prof = s.prof.clone().expect("profiling was enabled");
        assert!(!prof.folded().is_empty(), "folded output has rows");
        assert_eq!(
            prof.total_time_us(),
            s.sim_elapsed_us,
            "attribution rows telescope exactly to the step's simulated time"
        );
        let report = saturation_attribution(&SaturationRun {
            seed: 7,
            opts: SaturationOpts::legacy(),
            steps: vec![s],
        });
        assert!(report.contains("telescoping: exact"), "report: {report}");
        assert!(
            report.contains("dominant protocol phase"),
            "report: {report}"
        );
    }

    #[test]
    fn unprofiled_step_carries_no_profile() {
        let s = run_step(1, 50, SaturationOpts::legacy());
        assert!(s.prof.is_none());
        assert!(s.sim_elapsed_us > 0);
    }

    #[test]
    fn batched_profiled_step_telescopes_exactly() {
        obs::prof::set_enabled(true);
        let s = run_step(7, 50, SaturationOpts::batched());
        obs::prof::set_enabled(false);
        let _ = obs::prof::take();
        let prof = s.prof.clone().expect("profiling was enabled");
        assert_eq!(
            prof.total_time_us(),
            s.sim_elapsed_us,
            "batched stacks (batch_request/batch_member) stay inside the telescope"
        );
    }

    #[test]
    fn percentiles_index_correctly() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 10);
        assert_eq!(percentile(&v, 0.5), 6);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
