//! Structured attack outcomes for the experiment tables.

use std::fmt;

/// Outcome of one attack against one target system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackOutcome {
    /// The attack achieved its objective.
    Succeeded,
    /// The attack was attempted and defeated.
    Defeated,
    /// The attack could not even be attempted from the attacker's
    /// position (no reachability/visibility).
    NoVisibility,
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackOutcome::Succeeded => "SUCCEEDED",
            AttackOutcome::Defeated => "defeated",
            AttackOutcome::NoVisibility => "no visibility",
        };
        f.write_str(s)
    }
}

/// One row of the attack matrix.
#[derive(Clone, Debug)]
pub struct AttackRow {
    /// Attack name.
    pub attack: String,
    /// Target system ("commercial" or "spire").
    pub target: String,
    /// Outcome.
    pub outcome: AttackOutcome,
    /// What stopped it (or what it achieved).
    pub notes: String,
}

/// A full report.
#[derive(Clone, Debug, Default)]
pub struct AttackReport {
    /// The rows.
    pub rows: Vec<AttackRow>,
}

impl AttackReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn add(
        &mut self,
        attack: impl Into<String>,
        target: impl Into<String>,
        outcome: AttackOutcome,
        notes: impl Into<String>,
    ) {
        self.rows.push(AttackRow {
            attack: attack.into(),
            target: target.into(),
            outcome,
            notes: notes.into(),
        });
    }

    /// Whether every attack against `target` failed.
    pub fn target_held(&self, target: &str) -> bool {
        self.rows
            .iter()
            .filter(|r| r.target == target)
            .all(|r| r.outcome != AttackOutcome::Succeeded)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34} {:<12} {:<14} {}\n",
            "attack", "target", "outcome", "notes"
        ));
        out.push_str(&format!("{}\n", "-".repeat(100)));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<34} {:<12} {:<14} {}\n",
                r.attack,
                r.target,
                r.outcome.to_string(),
                r.notes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_judges() {
        let mut r = AttackReport::new();
        r.add(
            "port scan",
            "spire",
            AttackOutcome::NoVisibility,
            "default-deny drops silently",
        );
        r.add(
            "arp poisoning",
            "spire",
            AttackOutcome::Defeated,
            "static ARP tables",
        );
        r.add(
            "plc config dump",
            "commercial",
            AttackOutcome::Succeeded,
            "unauthenticated Modbus",
        );
        assert!(r.target_held("spire"));
        assert!(!r.target_held("commercial"));
        let table = r.render();
        assert!(table.contains("port scan"));
        assert!(table.contains("SUCCEEDED"));
        assert!(table.contains("no visibility"));
    }

    #[test]
    fn outcome_display() {
        assert_eq!(AttackOutcome::Succeeded.to_string(), "SUCCEEDED");
        assert_eq!(AttackOutcome::Defeated.to_string(), "defeated");
        assert_eq!(AttackOutcome::NoVisibility.to_string(), "no visibility");
    }
}
