//! HMAC-counter-mode stream cipher used for Spines link encryption.
//!
//! The keystream block `i` for nonce `n` is `HMAC-SHA-256(key, n || i)`;
//! ciphertext is plaintext XOR keystream. This is a textbook PRF-in-counter-
//! mode construction — real (given a strong PRF), simple, and deterministic.
//! The red-team experiment hinges on this layer: the modified Spines daemon
//! without the link keys cannot produce valid traffic (§IV-B).

use crate::hmac::HmacKey;

/// Encrypts or decrypts `data` in place (XOR stream, so the operation is an
/// involution).
///
/// # Examples
///
/// ```
/// use itcrypto::stream::xor_stream;
///
/// let key = [7u8; 32];
/// let mut data = b"breaker B57 trip".to_vec();
/// xor_stream(&key, 42, &mut data);
/// assert_ne!(&data, b"breaker B57 trip");
/// xor_stream(&key, 42, &mut data);
/// assert_eq!(&data, b"breaker B57 trip");
/// ```
pub fn xor_stream(key: &[u8; 32], nonce: u64, data: &mut [u8]) {
    xor_stream_with(&HmacKey::new(key), nonce, data);
}

/// [`xor_stream`] with a precomputed PRF key: every 32-byte keystream
/// block costs two SHA-256 compressions instead of four plus key setup.
pub fn xor_stream_with(key: &HmacKey, nonce: u64, data: &mut [u8]) {
    let mut counter: u64 = 0;
    let mut offset = 0;
    while offset < data.len() {
        let mut block_input = [0u8; 16];
        block_input[..8].copy_from_slice(&nonce.to_be_bytes());
        block_input[8..].copy_from_slice(&counter.to_be_bytes());
        let ks = key.mac(&block_input);
        let take = (data.len() - offset).min(32);
        for i in 0..take {
            data[offset + i] ^= ks.as_bytes()[i];
        }
        offset += take;
        counter += 1;
    }
}

/// The pre-derived per-link key pair (encryption PRF + MAC), ready for
/// [`seal_with`]/[`open_with`]. Deriving and precomputing once per link
/// replaces two HKDF derivations plus two HMAC key setups on every frame.
#[derive(Clone)]
pub struct LinkKeys {
    enc: HmacKey,
    mac: HmacKey,
}

impl LinkKeys {
    /// Derives the encryption and MAC subkeys from `link_key` exactly as
    /// [`seal`]/[`open`] do internally.
    pub fn derive(link_key: &[u8; 32]) -> Self {
        LinkKeys {
            enc: HmacKey::new(&crate::hmac::derive_key(link_key, b"enc")),
            mac: HmacKey::new(&crate::hmac::derive_key(link_key, b"mac")),
        }
    }
}

/// An authenticated, encrypted envelope: encrypt-then-MAC with separate keys
/// derived from one link key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBox {
    /// Nonce used for the stream cipher (unique per message per link).
    pub nonce: u64,
    /// Ciphertext bytes.
    pub ciphertext: Vec<u8>,
    /// HMAC tag over `nonce || ciphertext`.
    pub tag: [u8; 32],
}

/// Seals `plaintext` under `link_key` with the given `nonce`.
pub fn seal(link_key: &[u8; 32], nonce: u64, plaintext: &[u8]) -> SealedBox {
    seal_with(&LinkKeys::derive(link_key), nonce, plaintext)
}

/// [`seal`] with pre-derived link keys (the hot path: one `LinkKeys` per
/// overlay link, reused for every frame).
pub fn seal_with(keys: &LinkKeys, nonce: u64, plaintext: &[u8]) -> SealedBox {
    let mut ciphertext = plaintext.to_vec();
    xor_stream_with(&keys.enc, nonce, &mut ciphertext);
    let tag = keys.mac.mac_concat(&[&nonce.to_be_bytes(), &ciphertext]).0;
    SealedBox {
        nonce,
        ciphertext,
        tag,
    }
}

/// Opens a sealed box, returning the plaintext if the tag verifies.
pub fn open(link_key: &[u8; 32], sealed: &SealedBox) -> Option<Vec<u8>> {
    open_with(&LinkKeys::derive(link_key), sealed)
}

/// [`open`] with pre-derived link keys.
pub fn open_with(keys: &LinkKeys, sealed: &SealedBox) -> Option<Vec<u8>> {
    let expect = keys
        .mac
        .mac_concat(&[&sealed.nonce.to_be_bytes(), &sealed.ciphertext]);
    if !crate::hmac::verify_tag(&expect, &crate::sha256::Digest(sealed.tag)) {
        return None;
    }
    let mut plaintext = sealed.ciphertext.clone();
    xor_stream_with(&keys.enc, sealed.nonce, &mut plaintext);
    Some(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [9u8; 32];

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal(&KEY, 1, b"hello plant");
        assert_eq!(open(&KEY, &sealed), Some(b"hello plant".to_vec()));
    }

    #[test]
    fn wrong_key_fails() {
        let sealed = seal(&KEY, 1, b"hello");
        let other = [8u8; 32];
        assert_eq!(open(&other, &sealed), None);
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let mut sealed = seal(&KEY, 1, b"hello");
        sealed.ciphertext[0] ^= 0xff;
        assert_eq!(open(&KEY, &sealed), None);
    }

    #[test]
    fn tampered_nonce_fails() {
        let mut sealed = seal(&KEY, 1, b"hello");
        sealed.nonce = 2;
        assert_eq!(open(&KEY, &sealed), None);
    }

    #[test]
    fn tampered_tag_fails() {
        let mut sealed = seal(&KEY, 1, b"hello");
        sealed.tag[31] ^= 1;
        assert_eq!(open(&KEY, &sealed), None);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_by_nonce() {
        let a = seal(&KEY, 1, b"same message");
        let b = seal(&KEY, 2, b"same message");
        assert_ne!(a.ciphertext, b"same message");
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn empty_message_roundtrip() {
        let sealed = seal(&KEY, 7, b"");
        assert_eq!(open(&KEY, &sealed), Some(Vec::new()));
    }

    #[test]
    fn long_message_roundtrip() {
        let msg: Vec<u8> = (0..10_000u32).map(|x| x as u8).collect();
        let sealed = seal(&KEY, 3, &msg);
        assert_eq!(open(&KEY, &sealed), Some(msg));
    }

    #[test]
    fn prederived_keys_match_oneshot_exactly() {
        let keys = LinkKeys::derive(&KEY);
        for (nonce, msg) in [(1u64, &b"short"[..]), (7, &[0u8; 100][..]), (9, &[][..])] {
            let a = seal(&KEY, nonce, msg);
            let b = seal_with(&keys, nonce, msg);
            assert_eq!(a, b, "sealed boxes bit-identical");
            assert_eq!(open(&KEY, &a), open_with(&keys, &a));
        }
        // Cross-open: sealed one way, opened the other.
        let sealed = seal_with(&keys, 3, b"cross");
        assert_eq!(open(&KEY, &sealed), Some(b"cross".to_vec()));
        // Tamper rejection identical through both paths.
        let mut bad = sealed.clone();
        bad.ciphertext[0] ^= 1;
        assert_eq!(open(&KEY, &bad), None);
        assert_eq!(open_with(&keys, &bad), None);
    }

    #[test]
    fn xor_stream_block_boundaries() {
        // Lengths around the 32-byte block size.
        for len in [0usize, 1, 31, 32, 33, 64, 65] {
            let mut data: Vec<u8> = (0..len).map(|x| x as u8).collect();
            let orig = data.clone();
            xor_stream(&KEY, 5, &mut data);
            xor_stream(&KEY, 5, &mut data);
            assert_eq!(data, orig, "len={len}");
        }
    }
}
