//! The application interface between Prime and the replicated service.
//!
//! §III-A of the paper: "The replication layer signals the SCADA master
//! that an application-level state transfer is required, and the SCADA
//! masters must then execute a state transfer protocol at the application
//! level." [`Application`] is that contract: Prime orders updates and
//! calls [`Application::execute`]; when catch-up happens, Prime hands the
//! application a peer snapshot via [`Application::install_snapshot`]
//! rather than replaying history it does not have.

use itcrypto::sha256::{sha256, Digest};

use crate::types::Update;

/// The replicated state machine hosted on each replica.
pub trait Application {
    /// Applies one ordered update. `exec_seq` is the 1-based global
    /// execution sequence.
    fn execute(&mut self, update: &Update, exec_seq: u64);

    /// A digest of the full application state (checkpoints compare these).
    fn digest(&self) -> Digest;

    /// Serializes the full state for application-level state transfer.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a snapshot received from peers.
    /// Implementations must make `digest()` equal the snapshot's digest.
    fn install_snapshot(&mut self, snapshot: &[u8]);
}

/// A simple key-value application used by tests and benchmarks.
///
/// The payload format is `key=value` (both arbitrary byte strings without
/// `=` in the key); anything else is stored under the raw payload key with
/// an execution counter value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvApp {
    entries: std::collections::BTreeMap<Vec<u8>, Vec<u8>>,
    /// Number of updates executed.
    pub executed: u64,
}

impl KvApp {
    /// Creates an empty application.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.entries.get(key).map(|v| v.as_slice())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Application for KvApp {
    fn execute(&mut self, update: &Update, _exec_seq: u64) {
        self.executed += 1;
        let payload = update.payload.as_ref();
        match payload.iter().position(|&b| b == b'=') {
            Some(i) => {
                self.entries
                    .insert(payload[..i].to_vec(), payload[i + 1..].to_vec());
            }
            None => {
                self.entries
                    .insert(payload.to_vec(), self.executed.to_be_bytes().to_vec());
            }
        }
    }

    fn digest(&self) -> Digest {
        let mut h = itcrypto::sha256::Sha256::new();
        h.update(&self.executed.to_be_bytes());
        for (k, v) in &self.entries {
            h.update(&(k.len() as u32).to_be_bytes());
            h.update(k);
            h.update(&(v.len() as u32).to_be_bytes());
            h.update(v);
        }
        h.finalize()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.executed.to_be_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for (k, v) in &self.entries {
            out.extend_from_slice(&(k.len() as u32).to_be_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(&(v.len() as u32).to_be_bytes());
            out.extend_from_slice(v);
        }
        out
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.entries.clear();
        self.executed = 0;
        if snapshot.len() < 12 {
            return;
        }
        self.executed = u64::from_be_bytes(snapshot[..8].try_into().expect("8 bytes"));
        let n = u32::from_be_bytes(snapshot[8..12].try_into().expect("4 bytes")) as usize;
        let mut pos = 12;
        for _ in 0..n {
            let Some(klen_bytes) = snapshot.get(pos..pos + 4) else {
                return;
            };
            let klen = u32::from_be_bytes(klen_bytes.try_into().expect("4 bytes")) as usize;
            pos += 4;
            let Some(k) = snapshot.get(pos..pos + klen) else {
                return;
            };
            pos += klen;
            let Some(vlen_bytes) = snapshot.get(pos..pos + 4) else {
                return;
            };
            let vlen = u32::from_be_bytes(vlen_bytes.try_into().expect("4 bytes")) as usize;
            pos += 4;
            let Some(v) = snapshot.get(pos..pos + vlen) else {
                return;
            };
            pos += vlen;
            self.entries.insert(k.to_vec(), v.to_vec());
        }
    }
}

/// Convenience: digest of raw snapshot bytes (used when comparing
/// snapshot offers during catch-up).
pub fn snapshot_digest(snapshot: &[u8]) -> Digest {
    sha256(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn upd(s: &str) -> Update {
        Update::new(1, 1, Bytes::from(s.as_bytes().to_vec()))
    }

    #[test]
    fn execute_key_value() {
        let mut app = KvApp::new();
        app.execute(&upd("b57=open"), 1);
        app.execute(&upd("b57=closed"), 2);
        app.execute(&upd("b56=open"), 3);
        assert_eq!(app.get(b"b57"), Some(b"closed".as_ref()));
        assert_eq!(app.get(b"b56"), Some(b"open".as_ref()));
        assert_eq!(app.executed, 3);
        assert_eq!(app.len(), 2);
    }

    #[test]
    fn raw_payload_stored_with_counter() {
        let mut app = KvApp::new();
        app.execute(&upd("ping"), 1);
        assert!(app.get(b"ping").is_some());
    }

    #[test]
    fn digest_tracks_state_and_count() {
        let mut a = KvApp::new();
        let mut b = KvApp::new();
        a.execute(&upd("x=1"), 1);
        b.execute(&upd("x=1"), 1);
        assert_eq!(a.digest(), b.digest());
        b.execute(&upd("x=1"), 2);
        // Same final KV content, different executed count → different digest.
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = KvApp::new();
        for i in 0..20 {
            a.execute(&upd(&format!("key{i}={i}")), i + 1);
        }
        let snap = a.snapshot();
        let mut b = KvApp::new();
        b.install_snapshot(&snap);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let a = KvApp::new();
        let mut b = KvApp::new();
        b.execute(&upd("x=1"), 1);
        b.install_snapshot(&a.snapshot());
        assert_eq!(a.digest(), b.digest());
        assert!(b.is_empty());
    }

    #[test]
    fn truncated_snapshot_does_not_panic() {
        let mut a = KvApp::new();
        a.execute(&upd("abc=def"), 1);
        let snap = a.snapshot();
        for cut in 0..snap.len() {
            let mut b = KvApp::new();
            b.install_snapshot(&snap[..cut]);
        }
    }
}
