//! Experiment E13: wide-area site failover — each paper configuration
//! (`6@1`, `3+3`, `2+2+1+1`) runs the plant workload while the chaos
//! engine severs and heals an entire site mid-run (see EXPERIMENTS.md,
//! "E13").
//!
//! Per configuration the run measures ordering continuity (executed
//! counts before / during / after the sever), E5-style reaction-time
//! medians in the same three windows, reconvergence latency after the
//! heal, and the invariant checker's verdicts. `3+3` and `2+2+1+1` must
//! stay live through the sever (via a degraded epoch and the native
//! quorum respectively); `6@1` must go dark and the bounded-delay
//! invariant must say so.

use chaos::driver::ChaosDriver;
use chaos::invariants::{CheckerConfig, InvariantChecker, InvariantReport};
use chaos::plan::ChaosPlan;
use plc::topology::Scenario;
use prime::types::Config as PrimeConfig;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;
use spire::latency::Sample;
use spire::site::{SiteTopology, SurvivalMode};

use crate::harness::RunMeta;
use crate::plant_experiments::fast_timing;

/// One configuration's failover leg.
#[derive(Clone, Debug)]
pub struct SiteFailoverLeg {
    /// Experiment id of this leg (`e13a` / `e13b` / `e13c`).
    pub id: &'static str,
    /// Configuration label (`6@1`, `3+3`, `2+2+1+1`).
    pub config: String,
    /// Name of the severed site.
    pub severed_site: String,
    /// Survival-mode verdict of the management plane.
    pub survival: String,
    /// Members of the degraded epoch, when one was installed.
    pub degraded_members: Vec<u32>,
    /// Minimum executed count across all replicas before the sever.
    pub exec_before: u64,
    /// Minimum executed count across the survivors at the end of the
    /// sever window (all replicas when no survivor remains).
    pub exec_during: u64,
    /// Minimum executed count across all replicas after heal + quiesce.
    pub exec_after: u64,
    /// Whether ordering kept advancing while the site was severed.
    pub ordering_live_during: bool,
    /// Whether this leg is *expected* to lose liveness under the sever.
    pub expect_liveness_loss: bool,
    /// Whether the bounded-delay invariant's verdict matched the
    /// expectation (fired iff liveness loss was expected).
    pub liveness_verdict_correct: bool,
    /// Median reaction time (µs) before the sever.
    pub reaction_before_us: Option<u64>,
    /// Median reaction time (µs) while severed (`None` when the HMI
    /// never updated — the `6@1` outcome).
    pub reaction_during_us: Option<u64>,
    /// Median reaction time (µs) after heal + reconvergence.
    pub reaction_after_us: Option<u64>,
    /// Catch-up latencies (µs) the checker recorded after the heal.
    pub reconvergence_us: Vec<u64>,
    /// Per-invariant verdicts for the whole leg.
    pub invariants: Vec<InvariantReport>,
    /// Determinism capture (journal digest + event count).
    pub meta: RunMeta,
}

/// The full E13 run: one leg per paper configuration.
#[derive(Clone, Debug)]
pub struct SiteFailoverRun {
    /// The legs, in `6@1`, `3+3`, `2+2+1+1` order.
    pub legs: Vec<SiteFailoverLeg>,
}

impl SiteFailoverRun {
    /// The paper's headline: every multi-site configuration rode through
    /// the sever, the single-site configuration correctly reported loss.
    pub fn all_verdicts_correct(&self) -> bool {
        self.legs.iter().all(|l| l.liveness_verdict_correct)
    }
}

/// Median of the completed reactions, computed directly from the raw
/// samples ([`spire::latency::summarize`] panics when nothing completed,
/// which is the *expected* `6@1` during-sever outcome).
fn median_reaction_us(samples: &[Sample]) -> Option<u64> {
    let mut us: Vec<u64> = samples
        .iter()
        .filter_map(|s| s.reaction())
        .map(|d| d.as_micros())
        .collect();
    if us.is_empty() {
        return None;
    }
    us.sort_unstable();
    Some(us[us.len() / 2])
}

/// E5's measurement device, chaos-aware: flips breaker 1 of proxy 0's
/// PLC and times the HMI-0 box transition, telling the invariant checker
/// about every ground-truth change (so HMI-truth stays meaningful) and
/// letting it sample between flips (so bounded-delay stays armed).
fn measure_reactions(
    d: &mut Deployment,
    mut checker: Option<&mut InvariantChecker>,
    flips: usize,
    window: SimDuration,
) -> Vec<Sample> {
    let scenario_tag = d.proxy(0).scenario().tag();
    d.hmi_mut(0).hmi.set_sensor_breaker(scenario_tag, 1);
    let mut samples = Vec::new();
    let mut state = d.plc(0).positions()[1];
    for i in 0..flips {
        // Same deterministic phase jitter as E5: each flip lands at a
        // different offset inside the proxy's poll cycle.
        d.run_for(SimDuration::from_micros((i as u64 * 7_919) % 20_000));
        state = !state;
        let flipped_at = d.now();
        let seen = d.hmi(0).hmi.box_transitions.len();
        d.plc_mut(0).force_breaker(1, state, flipped_at);
        if let Some(c) = checker.as_deref_mut() {
            c.note_ground_truth(d);
        }
        d.run_for(window);
        if let Some(c) = checker.as_deref_mut() {
            c.observe(d);
        }
        let displayed_at = d
            .hmi(0)
            .hmi
            .box_transitions
            .get(seen..)
            .and_then(|new| new.iter().find(|&&(_, white)| white == state))
            .map(|&(t, _)| t);
        samples.push(Sample {
            flipped_at,
            displayed_at,
        });
    }
    samples
}

/// Runs one configuration's leg: builds the multi-site plant deployment,
/// measures reactions, severs `site` through the chaos engine, measures
/// under the sever, heals, quiesces, measures again.
fn e13_leg(
    id: &'static str,
    seed: u64,
    topology: SiteTopology,
    site: usize,
    expect_liveness_loss: bool,
) -> SiteFailoverLeg {
    let config = topology.label();
    let severed_site = topology.sites[site].name.clone();
    let survivors = topology.survivors_after_losing(site);

    let mut prime_cfg = PrimeConfig::plant();
    // As in E12: catch-up after the heal replays orderings the survivors
    // deduplicated, so the dedup table must transfer with the state.
    prime_cfg.transfer_dedup = true;
    let cfg = SpireConfig::minimal(prime_cfg, Scenario::PlantSubset).with_sites(topology);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..prime_cfg.n() {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d.proxy_mut(0)
        .set_poll_interval(SimDuration::from_millis(100));
    d.proxy_mut(0).verbose_updates = true;
    // Warm up (ARP, overlay discovery, first orderings), then the
    // seed-derived phase that makes distinct seeds produce distinct
    // event streams on the lossless-LAN legs.
    d.run_for(SimDuration::from_secs(1));
    d.run_for(SimDuration::from_micros(seed % 1_000));

    let window = SimDuration::from_secs(1);
    let before = measure_reactions(&mut d, None, 3, window);
    let exec_before = d.min_executed_among(&all_replicas(prime_cfg.n()));

    let mut checker_cfg = CheckerConfig::for_prime(&prime_cfg);
    // The `6@1` leg severs every replica: the static budget would disarm
    // the delay invariant (as it should for an over-budget fault), but
    // this leg's *point* is that the stall is detected — so the checker
    // runs in negative-test mode, exactly like E12's negative controls.
    checker_cfg.assume_within_budget = expect_liveness_loss;
    let mut checker = InvariantChecker::new(checker_cfg, &d);
    // One fault: sever the site 200 ms in, heal explicitly after the
    // during-window measurements (the plan duration is just "longer than
    // the soak" so `heal_all` is what heals it).
    let plan = ChaosPlan::site_failover(
        site as u32,
        SimDuration::from_millis(200),
        SimDuration::from_secs(600),
    );
    let mut driver = ChaosDriver::new(plan);
    let step = SimDuration::from_millis(100);
    driver.run_soak(&mut d, &mut checker, SimDuration::from_secs(2), step);
    // Liveness baseline *under* the sever (exec_before predates it by the
    // 200 ms injection delay, which would count pre-sever orderings).
    let exec_at_soak_end = if survivors.is_empty() {
        d.min_executed_among(&all_replicas(prime_cfg.n()))
    } else {
        d.min_executed_among(&survivors)
    };

    let during = measure_reactions(&mut d, Some(&mut checker), 3, window);
    let exec_during = if survivors.is_empty() {
        d.min_executed_among(&all_replicas(prime_cfg.n()))
    } else {
        d.min_executed_among(&survivors)
    };
    let survival = d.site_survival(site).expect("multi-site deployment");

    driver.heal_all(&mut d, &mut checker);
    driver.run_quiesce(&mut d, &mut checker, SimDuration::from_secs(10), step);
    let after = measure_reactions(&mut d, Some(&mut checker), 3, window);
    let exec_after = d.min_executed_among(&all_replicas(prime_cfg.n()));

    let invariants = checker.reports();
    let delay_violations = invariants[2].violations;
    let liveness_verdict_correct = if expect_liveness_loss {
        delay_violations > 0
    } else {
        delay_violations == 0
    };
    let (survival_name, degraded_members) = match &survival {
        SurvivalMode::NativeQuorum => ("native-quorum".to_string(), Vec::new()),
        SurvivalMode::DegradedEpoch(m) => ("degraded-epoch".to_string(), m.members().to_vec()),
        SurvivalMode::Lost => ("lost".to_string(), Vec::new()),
    };
    SiteFailoverLeg {
        id,
        config,
        severed_site,
        survival: survival_name,
        degraded_members,
        exec_before,
        exec_during,
        exec_after,
        ordering_live_during: exec_during > exec_at_soak_end,
        expect_liveness_loss,
        liveness_verdict_correct,
        reaction_before_us: median_reaction_us(&before),
        reaction_during_us: median_reaction_us(&during),
        reaction_after_us: median_reaction_us(&after),
        reconvergence_us: checker.reconvergence_us.clone(),
        invariants,
        meta: RunMeta::capture(&format!("{id}.failover"), &d.obs, &d.sim),
    }
}

fn all_replicas(n: u32) -> Vec<u32> {
    (0..n).collect()
}

/// One E13 leg by fingerprint id (`e13a` = `6@1`, `e13b` = `3+3`,
/// `e13c` = `2+2+1+1`), so the golden digests pin each configuration
/// separately.
///
/// # Panics
/// Panics on an unknown leg id.
pub fn e13_leg_by_id(id: &str, seed: u64) -> SiteFailoverLeg {
    match id {
        // 6@1: the only site is site 0; losing it loses everything.
        "e13a" => e13_leg("e13a", seed, SiteTopology::six_at_one(), 0, true),
        // 3+3: losing cc-b leaves 3 of 6 — a degraded epoch carries on.
        "e13b" => e13_leg("e13b", seed, SiteTopology::three_plus_three(), 1, false),
        // 2+2+1+1: losing cc-b leaves 4 of 6 — the native quorum holds.
        "e13c" => e13_leg("e13c", seed, SiteTopology::two_two_one_one(), 1, false),
        other => panic!("unknown e13 leg: {other}"),
    }
}

/// E13 — site failover across all three paper configurations.
pub fn e13_site_failover(seed: u64) -> SiteFailoverRun {
    SiteFailoverRun {
        legs: vec![
            e13_leg_by_id("e13a", seed),
            e13_leg_by_id("e13b", seed),
            e13_leg_by_id("e13c", seed),
        ],
    }
}

fn fmt_us(v: Option<u64>) -> String {
    match v {
        Some(us) => format!("{:.1}ms", us as f64 / 1e3),
        None => "-".to_string(),
    }
}

/// Renders one leg's verdict block.
pub fn render_leg(leg: &SiteFailoverLeg) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} config {:<9} severed {:<5} survival {}{}\n",
        leg.id,
        leg.config,
        leg.severed_site,
        leg.survival,
        if leg.degraded_members.is_empty() {
            String::new()
        } else {
            format!(" {:?}", leg.degraded_members)
        }
    ));
    out.push_str(&format!(
        "  executed: before {}  during {}  after {}   ordering live during sever: {}\n",
        leg.exec_before, leg.exec_during, leg.exec_after, leg.ordering_live_during
    ));
    out.push_str(&format!(
        "  reaction median: before {}  during {}  after {}\n",
        fmt_us(leg.reaction_before_us),
        fmt_us(leg.reaction_during_us),
        fmt_us(leg.reaction_after_us)
    ));
    out.push_str("  invariants:\n");
    for inv in &leg.invariants {
        let expected_red = leg.expect_liveness_loss && inv.name == "bounded-delay";
        out.push_str(&format!(
            "    {:<18} checks {:>5}   violations {:>3}   {}\n",
            inv.name,
            inv.checks,
            inv.violations,
            if inv.violations == 0 {
                "GREEN"
            } else if expected_red {
                "RED (expected)"
            } else {
                "RED"
            }
        ));
    }
    if leg.reconvergence_us.is_empty() {
        out.push_str("  reconvergence: no catch-up required\n");
    } else {
        let mut sorted = leg.reconvergence_us.clone();
        sorted.sort_unstable();
        let p50 = sorted[sorted.len() / 2];
        let max = *sorted.last().expect("non-empty");
        out.push_str(&format!(
            "  reconvergence: {} heals, p50 {:.3}s, max {:.3}s\n",
            sorted.len(),
            p50 as f64 / 1e6,
            max as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "  liveness verdict correct: {}\n",
        leg.liveness_verdict_correct
    ));
    out
}

/// Renders the full E13 table.
pub fn render_site_failover(run: &SiteFailoverRun) -> String {
    let mut out = String::from("e13 site failover (sever + heal one full site per config)\n\n");
    for leg in &run.legs {
        out.push_str(&render_leg(leg));
        out.push('\n');
    }
    out.push_str(&format!(
        "all verdicts correct: {}\n",
        run.all_verdicts_correct()
    ));
    out
}

/// E13 results as JSON (for `spire-sim e13 --json`). Hand-rolled: the
/// workspace deliberately has no serde dependency.
pub fn site_failover_json(run: &SiteFailoverRun) -> String {
    let legs: Vec<String> = run
        .legs
        .iter()
        .map(|l| {
            let invariants: Vec<String> = l
                .invariants
                .iter()
                .map(|inv| {
                    format!(
                        "{{\"name\":\"{}\",\"checks\":{},\"violations\":{}}}",
                        inv.name, inv.checks, inv.violations
                    )
                })
                .collect();
            let members: Vec<String> = l.degraded_members.iter().map(u32::to_string).collect();
            let reconv: Vec<String> = l.reconvergence_us.iter().map(u64::to_string).collect();
            let us = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
            format!(
                "    {{\n      \"id\": \"{}\",\n      \"config\": \"{}\",\n      \
                 \"severed_site\": \"{}\",\n      \"survival\": \"{}\",\n      \
                 \"degraded_members\": [{}],\n      \"exec_before\": {},\n      \
                 \"exec_during\": {},\n      \"exec_after\": {},\n      \
                 \"ordering_live_during\": {},\n      \"expect_liveness_loss\": {},\n      \
                 \"liveness_verdict_correct\": {},\n      \"reaction_before_us\": {},\n      \
                 \"reaction_during_us\": {},\n      \"reaction_after_us\": {},\n      \
                 \"reconvergence_us\": [{}],\n      \"invariants\": [{}],\n      \
                 \"journal_digest\": \"{}\"\n    }}",
                l.id,
                l.config,
                l.severed_site,
                l.survival,
                members.join(","),
                l.exec_before,
                l.exec_during,
                l.exec_after,
                l.ordering_live_during,
                l.expect_liveness_loss,
                l.liveness_verdict_correct,
                us(l.reaction_before_us),
                us(l.reaction_during_us),
                us(l.reaction_after_us),
                reconv.join(","),
                invariants.join(","),
                l.meta.journal_digest
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"spire-e13-v1\",\n  \"all_verdicts_correct\": {},\n  \
         \"legs\": [\n{}\n  ]\n}}\n",
        run.all_verdicts_correct(),
        legs.join(",\n")
    )
}
