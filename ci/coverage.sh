#!/usr/bin/env bash
# Line-coverage gate: measures workspace line coverage with
# cargo-llvm-cov and fails when it drops more than MARGIN percentage
# points below the recorded baseline in ci/coverage-baseline.txt.
#
# cargo-llvm-cov and a matching llvm-tools component are not part of the
# offline image this repository is developed in, so the gate degrades to
# a skip-with-notice when the tool is missing instead of failing the
# pipeline. On a machine with the tool, the first run records the
# baseline; commit that file so later runs enforce it.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_FILE=ci/coverage-baseline.txt
MARGIN=2.0 # allowed regression, in percentage points

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "coverage: cargo-llvm-cov not installed; skipping the gate"
    echo "coverage: enable with: cargo install cargo-llvm-cov && rustup component add llvm-tools"
    exit 0
fi

echo "==> cargo llvm-cov (workspace line coverage)"
current=$(cargo llvm-cov --workspace --json --summary-only 2>/dev/null |
    python3 -c 'import json, sys; print("%.2f" % json.load(sys.stdin)["data"][0]["totals"]["lines"]["percent"])')
echo "coverage: current line coverage ${current}%"

baseline=$(grep -v '^#' "$BASELINE_FILE" | head -1)
if [ "$baseline" = "unset" ]; then
    # First run with tooling available: record and ask for a commit.
    sed -i "s/^unset$/${current}/" "$BASELINE_FILE"
    echo "coverage: baseline recorded as ${current}% — commit ${BASELINE_FILE}"
    exit 0
fi

floor=$(awk -v b="$baseline" -v m="$MARGIN" 'BEGIN { printf "%.2f", b - m }')
if awk -v c="$current" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
    echo "coverage: FAIL — ${current}% is below the allowed floor ${floor}%" \
        "(baseline ${baseline}% - ${MARGIN} pp)"
    exit 1
fi
echo "coverage: OK (baseline ${baseline}%, floor ${floor}%)"

# Ratchet note: if coverage rose well past the baseline, suggest
# re-recording so the floor tracks reality.
if awk -v c="$current" -v b="$baseline" 'BEGIN { exit !(c > b + 1.0) }'; then
    echo "coverage: note — coverage rose to ${current}%; consider updating ${BASELINE_FILE}"
fi
