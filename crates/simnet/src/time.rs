//! Virtual time. All simulation timestamps are microseconds since start.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncated).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds in this duration.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncated).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiply by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(1_000);
        let d = SimDuration::from_millis(2);
        assert_eq!(t + d, SimTime(3_000));
        assert_eq!((t + d) - t, SimDuration(2_000));
        assert_eq!(t.since(SimTime(400)), SimDuration(600));
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_millis(), 3);
        assert_eq!(SimTime(1_500_000).as_millis(), 1_500);
        assert!((SimTime(2_500_000).as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn saturation() {
        assert_eq!(SimTime(u64::MAX) + SimDuration(10), SimTime(u64::MAX));
        assert_eq!(SimDuration(u64::MAX).saturating_mul(3).0, u64::MAX);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimDuration(500).to_string(), "500us");
        assert_eq!(SimDuration(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration(1_500_000).to_string(), "1.500s");
        assert_eq!(format!("{:?}", SimTime(7)), "t+7us");
    }
}
