//! The breaker bank: commanded coils, mechanical position feedback, and
//! operate delays.
//!
//! Real breakers do not change state instantaneously: the coil command is
//! issued, the mechanism operates a few tens of milliseconds later, and
//! only then does the position feedback contact change. The §V reaction-
//! time measurement depends on this ordering (flip command → mechanical
//! operate → SCADA observes feedback → HMI updates).

use simnet::time::{SimDuration, SimTime};

/// State of one breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Breaker {
    /// The commanded state (true = closed). Written by coil writes.
    pub commanded: bool,
    /// The actual mechanical position (true = closed).
    pub position: bool,
    /// When a pending operation completes, if one is in flight.
    pub operating_until: Option<SimTime>,
    /// Total number of completed operations.
    pub operations: u64,
}

impl Breaker {
    fn new(closed: bool) -> Self {
        Breaker {
            commanded: closed,
            position: closed,
            operating_until: None,
            operations: 0,
        }
    }
}

/// A bank of breakers with a common operate delay.
#[derive(Clone, Debug)]
pub struct BreakerBank {
    breakers: Vec<Breaker>,
    operate_delay: SimDuration,
}

impl BreakerBank {
    /// Creates `count` breakers, all initially closed, with the given
    /// mechanical operate delay.
    pub fn new(count: usize, operate_delay: SimDuration) -> Self {
        BreakerBank {
            breakers: vec![Breaker::new(true); count],
            operate_delay,
        }
    }

    /// Number of breakers.
    pub fn len(&self) -> usize {
        self.breakers.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.breakers.is_empty()
    }

    /// Commands breaker `idx` to `closed` at time `now`. No-op if already
    /// commanded to that state. Returns whether the command was accepted.
    pub fn command(&mut self, idx: usize, closed: bool, now: SimTime) -> bool {
        let Some(b) = self.breakers.get_mut(idx) else {
            return false;
        };
        if b.commanded == closed {
            return true;
        }
        b.commanded = closed;
        b.operating_until = Some(now + self.operate_delay);
        true
    }

    /// Advances mechanics: any operation whose delay has elapsed moves the
    /// position to the commanded state. Returns indices that changed.
    pub fn step(&mut self, now: SimTime) -> Vec<usize> {
        let mut changed = Vec::new();
        for (i, b) in self.breakers.iter_mut().enumerate() {
            if let Some(t) = b.operating_until {
                if t <= now {
                    b.operating_until = None;
                    if b.position != b.commanded {
                        b.position = b.commanded;
                        b.operations += 1;
                        changed.push(i);
                    }
                }
            }
        }
        changed
    }

    /// The mechanical positions (the ground truth SCADA reads back).
    pub fn positions(&self) -> Vec<bool> {
        self.breakers.iter().map(|b| b.position).collect()
    }

    /// The commanded states (the coil values).
    pub fn commanded(&self) -> Vec<bool> {
        self.breakers.iter().map(|b| b.commanded).collect()
    }

    /// Read access to one breaker.
    pub fn breaker(&self, idx: usize) -> Option<&Breaker> {
        self.breakers.get(idx)
    }

    /// Forces the mechanical position directly (field crew / physical
    /// trip), bypassing the command path.
    pub fn force_position(&mut self, idx: usize, closed: bool) -> bool {
        if let Some(b) = self.breakers.get_mut(idx) {
            b.position = closed;
            b.commanded = closed;
            b.operating_until = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BreakerBank {
        BreakerBank::new(3, SimDuration::from_millis(40))
    }

    #[test]
    fn command_takes_effect_after_delay() {
        let mut b = bank();
        assert!(b.command(0, false, SimTime(0)));
        // Immediately after the command, position unchanged.
        assert_eq!(b.step(SimTime(10_000)), Vec::<usize>::new());
        assert!(b.positions()[0]);
        // After the operate delay, the position follows.
        assert_eq!(b.step(SimTime(40_000)), vec![0]);
        assert!(!b.positions()[0]);
        assert_eq!(b.breaker(0).expect("idx").operations, 1);
    }

    #[test]
    fn redundant_command_is_noop() {
        let mut b = bank();
        assert!(b.command(1, true, SimTime(0))); // already closed
        assert!(b.step(SimTime(100_000)).is_empty());
        assert_eq!(b.breaker(1).expect("idx").operations, 0);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = bank();
        assert!(!b.command(9, false, SimTime(0)));
        assert!(!b.force_position(9, false));
        assert!(b.breaker(9).is_none());
    }

    #[test]
    fn command_flip_before_operate_settles_to_last() {
        let mut b = bank();
        b.command(0, false, SimTime(0));
        b.command(0, true, SimTime(10_000)); // re-close before it opened
        let changed = b.step(SimTime(100_000));
        // Position was already closed; commanded is closed: no change fires.
        assert!(changed.is_empty());
        assert!(b.positions()[0]);
    }

    #[test]
    fn force_position_is_immediate() {
        let mut b = bank();
        assert!(b.force_position(2, false));
        assert!(!b.positions()[2]);
        assert!(!b.commanded()[2]);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(bank().len(), 3);
        assert!(!bank().is_empty());
        assert!(BreakerBank::new(0, SimDuration::ZERO).is_empty());
    }
}
