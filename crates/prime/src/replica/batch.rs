//! Merkle-batched pre-order dissemination (armed by `Config::batch_max`).
//!
//! The per-update `PoRequest` broadcast is the pre-ordering hot path: at
//! the E11 knee it holds the sender's NIC lane for `(n-1)` message slots
//! per client update. Batching amortizes that cost: updates introduced at
//! `submit` are pre-ordered (stored and ARU-counted) immediately, but
//! dissemination waits until the batch closes — when `batch_max` members
//! accumulate or `batch_delay` elapses since the previous close,
//! whichever comes first. The closed batch travels as one
//! [`PrimeMsg::PoRequestBatch`] carrying a Merkle root over the
//! `(po_seq, update)` leaves and a single origin signature over the root,
//! so receivers pay one signature verification per batch (memoized in the
//! [`VerifyCache`] under the root, not per member).
//!
//! Reconciliation stays per-slot: a `PoFetch` for a slot that was
//! disseminated in a batch is answered with a [`PrimeMsg::PoBatchMember`]
//! — the member update plus its Merkle inclusion path — which any holder
//! of the batch can serve. The receiver folds the leaf up the path and
//! checks the origin's root signature, so a faulty relayer cannot forge
//! or transplant members.

use super::*;
use crate::messages::PoBatch;
use itcrypto::merkle::Proof;
use itcrypto::schnorr::Signature;

impl<A: Application> Replica<A> {
    /// Closes the pending batch: signs the Merkle root over the pending
    /// `(po_seq, update)` leaves and broadcasts one `PoRequestBatch`.
    pub(super) fn flush_batch(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        if self.batch_pending.is_empty() {
            return;
        }
        self.last_batch_at = now;
        let first_po_seq = self.batch_pending[0].0;
        let updates: Vec<SignedUpdate> = self
            .batch_pending
            .drain(..)
            .map(|(_, update)| update)
            .collect();
        self.stats.batches_sent += 1;
        // One root signature per batch (the envelope signature below is
        // charged by `sign` itself).
        obs::prof::charge_crypto("prime;preorder;batch_request", obs::prof::CryptoOp::Sign, 1);
        let batch = PoBatch::sign(self.id, first_po_seq, updates, &mut self.key);
        self.po_batches
            .insert((self.id.0, first_po_seq), batch.clone());
        let msg = self.sign(PrimeMsg::PoRequestBatch { batch });
        out.push(OutEvent::Broadcast(msg));
    }

    /// Accepts a disseminated batch from its origin: verifies the root
    /// signature (cache-keyed on the Merkle root) plus each member's
    /// client signature, then stores every member slot.
    pub(super) fn accept_po_batch(
        &mut self,
        from: ReplicaId,
        batch: PoBatch,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        // Only the origin may bind its slots, exactly as for PoRequest.
        if from != batch.origin || batch.origin.0 >= self.config.n() {
            return;
        }
        let count = batch.updates.len() as u64;
        let first_counter = po_counter(batch.first_po_seq);
        // The batch must sit inside one incarnation's counter space and
        // must not wrap: members are `first_po_seq + i`.
        if count == 0 || first_counter == 0 || first_counter + count > (1 << PO_SEQ_BITS) {
            return;
        }
        if !batch.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        for update in &batch.updates {
            if !update.verify_cached(&self.registry, &mut self.verify_cache) {
                self.stats.bad_sigs += 1;
                return;
            }
        }
        let inc = po_incarnation(batch.first_po_seq);
        let o = batch.origin.0 as usize;
        if batch.origin != self.id && inc > self.origin_inc[o] {
            self.origin_inc[o] = inc;
            self.aru_counter[o] = 0;
        }
        for (i, update) in batch.updates.iter().enumerate() {
            let po_seq = batch.first_po_seq + i as u64;
            self.po_store
                .entry((o as u32, po_seq))
                .or_insert_with(|| update.clone());
        }
        self.stats.batches_accepted += 1;
        self.po_batches
            .entry((o as u32, batch.first_po_seq))
            .or_insert(batch);
        self.advance_my_aru();
        self.note_unordered(now);
        self.try_execute(now, out);
    }

    /// Builds a `PoBatchMember` reply for a fetched slot that this
    /// replica holds inside a stored batch.
    pub(super) fn batch_member_reply(
        &mut self,
        origin: ReplicaId,
        po_seq: u64,
    ) -> Option<Envelope> {
        let (&(batch_origin, first_po_seq), batch) =
            self.po_batches.range(..=(origin.0, po_seq)).next_back()?;
        let count = batch.updates.len() as u64;
        if batch_origin != origin.0 || po_seq < first_po_seq || po_seq >= first_po_seq + count {
            return None;
        }
        let index = (po_seq - first_po_seq) as usize;
        let proof = batch.tree().prove(index)?;
        let update = batch.updates[index].clone();
        let root_sig = batch.root_sig;
        let msg = PrimeMsg::PoBatchMember {
            origin,
            first_po_seq,
            count: count as u32,
            index: index as u32,
            update,
            path: proof.path,
            root_sig,
        };
        Some(self.sign(msg))
    }

    /// Accepts a single batch member delivered in reconciliation. Any
    /// peer may serve it: folding the leaf up the inclusion path must
    /// reproduce a root carrying the *origin's* signature, which binds
    /// `(origin, first_po_seq, count, root)` — a corrupted member, a
    /// transplanted path, or a shifted index all fold to a different
    /// root and fail the signature check.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn accept_po_batch_member(
        &mut self,
        origin: ReplicaId,
        first_po_seq: u64,
        count: u32,
        index: u32,
        update: SignedUpdate,
        path: Vec<(Digest, bool)>,
        root_sig: &Signature,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if origin.0 >= self.config.n() || count == 0 || index >= count {
            return;
        }
        let first_counter = po_counter(first_po_seq);
        if first_counter == 0 || first_counter + count as u64 > (1 << PO_SEQ_BITS) {
            return;
        }
        let po_seq = first_po_seq + index as u64;
        if self.po_store.contains_key(&(origin.0, po_seq)) {
            return;
        }
        if !update.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        let proof = Proof {
            index: index as usize,
            path,
        };
        let root = proof.fold_root(&PoBatch::leaf_bytes(po_seq, &update));
        if !PoBatch::verify_root_cached(
            &self.registry,
            &mut self.verify_cache,
            origin,
            first_po_seq,
            count,
            root,
            root_sig,
        ) {
            self.stats.bad_sigs += 1;
            return;
        }
        let inc = po_incarnation(first_po_seq);
        let o = origin.0 as usize;
        if origin != self.id && inc > self.origin_inc[o] {
            self.origin_inc[o] = inc;
            self.aru_counter[o] = 0;
        }
        self.po_store.insert((origin.0, po_seq), update);
        self.advance_my_aru();
        self.note_unordered(now);
        self.try_execute(now, out);
    }
}
