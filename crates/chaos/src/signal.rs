//! Deterministic, machine-readable chaos signal feed.
//!
//! The driver journals injections/heals and the checker journals
//! violations, but the journal is a byte-encoded digest input — consumers
//! that want to *react* to chaos (the response controller, tests) would
//! have to re-parse it. The feed fixes that: the driver and checker
//! publish typed [`ChaosSignal`] records into a shared, append-only
//! buffer, in the exact order the underlying events happen, so a consumer
//! polling [`SignalFeed::drain_from`] with its own cursor sees a
//! deterministic stream for a given seed.
//!
//! The feed is an observation channel, not a side channel: publishing
//! never mutates the deployment, and nothing in the driver or checker
//! reads it back. Attaching a feed therefore cannot change a run's
//! journal digest.

use std::sync::{Arc, Mutex};

use simnet::time::SimTime;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalKind {
    /// The driver injected a fault (`code` = `FaultKind` tag).
    Injected,
    /// The driver healed a fault (`code` = `FaultKind` tag).
    Healed,
    /// A healed replica caught back up (`value` = latency in µs).
    ReconvergenceDone,
    /// A healed replica missed the reconvergence window.
    ReconvergenceTimeout,
    /// An invariant fired (`code` = invariant tag, `value` = detail).
    Violation,
}

/// One feed record. Flat fields (no per-kind payload enums) keep
/// consumers' match arms and the determinism proptests simple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSignal {
    /// What happened.
    pub kind: SignalKind,
    /// Kind-specific tag: `FaultKind` tag for inject/heal, invariant tag
    /// for violations, 0 otherwise.
    pub code: u8,
    /// Affected component (replica id for most signals).
    pub target: u32,
    /// Kind-specific value: reconvergence latency (µs) or violation
    /// detail, 0 otherwise.
    pub value: u64,
    /// Simulated time the signal was published.
    pub at: SimTime,
}

/// Shared append-only signal buffer. Clones share state (the `ObsHub`
/// idiom); publication order is the single-threaded simulation's event
/// order, so reads are seed-deterministic.
#[derive(Clone, Default)]
pub struct SignalFeed {
    inner: Arc<Mutex<Vec<ChaosSignal>>>,
}

impl SignalFeed {
    /// An empty feed.
    pub fn new() -> Self {
        SignalFeed::default()
    }

    /// Appends a signal.
    pub fn publish(&self, sig: ChaosSignal) {
        self.inner.lock().unwrap().push(sig);
    }

    /// Total signals published so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns every signal published since `cursor` and advances the
    /// cursor past them. Each consumer owns its cursor, so multiple
    /// consumers can tail the same feed independently.
    pub fn drain_from(&self, cursor: &mut usize) -> Vec<ChaosSignal> {
        let inner = self.inner.lock().unwrap();
        let fresh = inner[(*cursor).min(inner.len())..].to_vec();
        *cursor = inner.len();
        fresh
    }

    /// A snapshot of the full history.
    pub fn all(&self) -> Vec<ChaosSignal> {
        self.inner.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: SignalKind, target: u32) -> ChaosSignal {
        ChaosSignal {
            kind,
            code: 0,
            target,
            value: 0,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn cursors_are_independent_and_order_preserving() {
        let feed = SignalFeed::new();
        let clone = feed.clone();
        feed.publish(sig(SignalKind::Injected, 1));
        clone.publish(sig(SignalKind::Healed, 1));

        let mut a = 0;
        let mut b = 0;
        let first = feed.drain_from(&mut a);
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].kind, SignalKind::Injected);
        assert_eq!(first[1].kind, SignalKind::Healed);
        assert!(feed.drain_from(&mut a).is_empty());

        feed.publish(sig(SignalKind::Violation, 2));
        assert_eq!(feed.drain_from(&mut a).len(), 1);
        // The second consumer still sees the full history.
        assert_eq!(clone.drain_from(&mut b).len(), 3);
        assert_eq!(feed.len(), 3);
    }
}
