//! A minimal self-describing binary codec for message payloads.
//!
//! Every protocol in the reproduction (Spines, Prime, Modbus-over-proxy,
//! SCADA updates) serializes its messages to bytes with this codec before
//! they enter the network. That keeps fidelity where it matters for the
//! paper: signatures and HMACs cover real byte strings, attackers can flip
//! bits in real payloads, and MANA only ever sees opaque ciphertext.

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What the decoder was trying to read.
    pub context: &'static str,
}

impl DecodeError {
    /// Creates a decode error with context.
    pub fn new(context: &'static str) -> Self {
        DecodeError { context }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data while reading {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Incrementally builds a wire payload.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.buf.put_u8(v as u8);
        self
    }

    /// Appends a length-prefixed byte string (u32 length).
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Appends raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Finishes and returns the payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads a wire payload produced by [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Returns an error if any bytes remain (strict decoding).
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::new("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(context));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::new("bool")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len, "bytes body")?.to_vec())
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n, "raw bytes")
    }
}

/// Types that serialize to / from the wire format.
pub trait Wire: Sized {
    /// Serializes `self` into `w`.
    fn encode(&self, w: &mut Writer);

    /// Deserializes from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Convenience: serializes to a fresh byte buffer.
    fn to_wire(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Convenience: strict decode of an entire buffer.
    fn from_wire(data: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(data);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        a: u8,
        b: u16,
        c: u32,
        d: u64,
        e: bool,
        f: Vec<u8>,
    }

    impl Wire for Sample {
        fn encode(&self, w: &mut Writer) {
            w.put_u8(self.a)
                .put_u16(self.b)
                .put_u32(self.c)
                .put_u64(self.d)
                .put_bool(self.e)
                .put_bytes(&self.f);
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(Sample {
                a: r.get_u8()?,
                b: r.get_u16()?,
                c: r.get_u32()?,
                d: r.get_u64()?,
                e: r.get_bool()?,
                f: r.get_bytes()?,
            })
        }
    }

    #[test]
    fn roundtrip() {
        let s = Sample {
            a: 1,
            b: 0xBEEF,
            c: 0xDEADBEEF,
            d: u64::MAX,
            e: true,
            f: vec![1, 2, 3],
        };
        let bytes = s.to_wire();
        assert_eq!(Sample::from_wire(&bytes).expect("roundtrip"), s);
    }

    #[test]
    fn truncated_fails() {
        let s = Sample {
            a: 1,
            b: 2,
            c: 3,
            d: 4,
            e: false,
            f: vec![9; 10],
        };
        let bytes = s.to_wire();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(Sample::from_wire(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_fail_strict_decode() {
        let s = Sample {
            a: 0,
            b: 0,
            c: 0,
            d: 0,
            e: false,
            f: vec![],
        };
        let mut bytes = s.to_wire().to_vec();
        bytes.push(0);
        assert!(Sample::from_wire(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut w = Writer::new();
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = Writer::new();
        w.put_u32(1_000_000); // claims a million bytes follow
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn raw_and_remaining() {
        let mut w = Writer::new();
        w.put_raw(b"abcd");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.get_raw(2).expect("2 bytes"), b"ab");
        assert_eq!(r.remaining(), 2);
        assert!(r.get_raw(3).is_err());
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::new("u32");
        assert!(e.to_string().contains("u32"));
    }
}
