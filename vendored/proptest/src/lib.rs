//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! integer-range strategies, tuple strategies, and
//! [`collection::vec`]. Instead of the real crate's shrinking test
//! runner, each property runs a fixed number of cases drawn from a
//! deterministic generator seeded by the test's module path and name,
//! so failures reproduce exactly across runs. Assertion macros panic
//! on failure (no `TestCaseError` plumbing), which is what `#[test]`
//! wants anyway.

use std::ops::Range;

/// How many cases each property runs.
pub const DEFAULT_CASES: u32 = 64;

/// Deterministic per-test random source.
pub mod test_runner {
    /// SplitMix64 generator seeded from the test name and case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator whose stream depends only on `name` and `case`.
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case number.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

use test_runner::TestRng;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing unconstrained values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T` (full integer ranges,
/// fair bools, uniformly random byte arrays).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A / a)
    (A / a, B / b)
    (A / a, B / b, C / c)
    (A / a, B / b, C / c, D / d)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`]: either exact or a half-open range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniformly from `start..end`.
        Span(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Span(r.start, r.end)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length given by `size`
    /// (a `usize` for exact length, or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Span(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    lo + rng.below((hi - lo) as u64) as usize
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares property tests. Each `fn name(pat in strategy, ...)` body
/// runs [`DEFAULT_CASES`](crate::DEFAULT_CASES) times with fresh values
/// drawn deterministically per (test name, case index).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::DEFAULT_CASES {
                    let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Like `assert!`, inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`, inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = TestRng::deterministic("x", 0);
        let mut b = TestRng::deterministic("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x", 1);
        let mut d = TestRng::deterministic("y", 0);
        assert_ne!(a.next_u64(), c.next_u64());
        assert_ne!(b.next_u64(), d.next_u64());
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::deterministic("sizes", 0);
        let exact = crate::collection::vec(any::<u8>(), 7).generate(&mut rng);
        assert_eq!(exact.len(), 7);
        for _ in 0..100 {
            let ranged = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&ranged.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_binds_patterns(mut x in 0u32..10, (a, b) in (any::<bool>(), 1usize..4)) {
            x += 1;
            prop_assert!((1..=10).contains(&x));
            prop_assert!((1..4).contains(&b));
            let _ = a;
        }
    }
}
