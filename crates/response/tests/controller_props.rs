//! Property tests for the response controller: determinism (same
//! observation stream ⇒ identical actuator sequence) and the budget
//! guard (controller-initiated recoveries never exceed the `f`/`k`
//! disruptive-window discipline, mirroring `ChaosPlan::within_budget`).

use proptest::prelude::*;
use response::{
    Actuation, Controller, ControllerInput, ProxyObservation, ReplicaObservation, ResponseConfig,
};
use simnet::time::SimTime;

const N: u32 = 6;
const TICK_US: u64 = 100_000;
const TICKS: u64 = 400;

/// SplitMix64 — a self-contained deterministic stream per seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A hostile but *observable* world: random anomaly scores, random
/// external crashes, view bumps, floods. The controller's own downs are
/// reflected back as `up = false`, exactly as a deployment would.
fn drive(seed: u64, cfg: ResponseConfig) -> (Controller, Vec<(u64, bool)>) {
    let mut rng = Rng(seed ^ 0x5eed_50de);
    let mut c = Controller::new(cfg);
    let mut ours_down: Vec<u32> = Vec::new();
    // Externally-crashed replicas: (replica, ticks remaining).
    let mut ext_down: Vec<(u32, u64)> = Vec::new();
    let mut view = 0u64;
    // Per tick: was any replica externally down when the tick was fed?
    let mut ext_down_log = Vec::new();
    for t in 0..TICKS {
        let now = SimTime(t * TICK_US);
        ext_down.retain_mut(|(_, left)| {
            *left -= 1;
            *left > 0
        });
        if rng.below(40) == 0 && ext_down.len() < 2 {
            ext_down.push((rng.below(N as u64) as u32, 5 + rng.below(20)));
        }
        if rng.below(60) == 0 {
            view += 1;
        }
        let replicas: Vec<ReplicaObservation> = (0..N)
            .map(|r| {
                let externally_down = ext_down.iter().any(|(dr, _)| *dr == r);
                ReplicaObservation {
                    replica: r,
                    up: !externally_down && !ours_down.contains(&r),
                    anomaly_z: rng.below(150) as f64 / 10.0,
                    po_queue: rng.below(700) as u32,
                    tat_us: rng.below(4_000_000),
                    view,
                    catching_up: rng.below(30) == 0,
                }
            })
            .collect();
        let any_ext_down = !ext_down.is_empty();
        ext_down_log.push((t, any_ext_down));
        let input = ControllerInput {
            now,
            replicas,
            proxies: vec![ProxyObservation {
                proxy: 0,
                anomaly_z: rng.below(120) as f64 / 10.0,
            }],
            signals: Vec::new(),
        };
        for act in c.step(&input) {
            match act {
                Actuation::TakeDown { replica } => ours_down.push(replica),
                Actuation::Restore { replica } => ours_down.retain(|r| *r != replica),
                _ => {}
            }
        }
    }
    (c, ext_down_log)
}

proptest! {
    /// Determinism: the controller is a pure function of its observation
    /// stream — same seed, twice, must produce identical actuation and
    /// transition sequences.
    #[test]
    fn same_stream_same_actuator_sequence(seed in any::<u64>()) {
        let cfg = ResponseConfig::for_budget(N, 1, 1);
        let (a, _) = drive(seed, cfg);
        let (b, _) = drive(seed, cfg);
        prop_assert_eq!(a.actions(), b.actions());
        prop_assert_eq!(a.transitions(), b.transitions());
    }

    /// Budget guard: replaying the action log, controller-initiated downs
    /// never exceed `k` concurrently, never open while an external crash
    /// is live, honor the restore-to-next-takedown cool-down, and honor
    /// the per-replica re-recovery cool-down.
    #[test]
    fn recoveries_never_exceed_the_disruptive_budget(seed in any::<u64>()) {
        let cfg = ResponseConfig::for_budget(N, 1, 1);
        let (c, ext_down_log) = drive(seed, cfg);
        let mut down: Vec<u32> = Vec::new();
        let mut last_restore: Option<SimTime> = None;
        let mut last_restore_of = vec![None::<SimTime>; N as usize];
        for (at, act) in c.actions() {
            match act {
                Actuation::TakeDown { replica } => {
                    down.push(*replica);
                    prop_assert!(
                        down.len() as u32 <= cfg.k,
                        "seed {seed}: {} concurrent controller downs at {at:?}",
                        down.len()
                    );
                    let tick = at.as_micros() / TICK_US;
                    let ext = ext_down_log.iter().find(|(t, _)| *t == tick).map(|(_, e)| *e);
                    prop_assert_eq!(
                        ext, Some(false),
                        "seed {}: takedown at tick {} with an external crash live",
                        seed, tick
                    );
                    if let Some(end) = last_restore {
                        prop_assert!(
                            at.since(end).as_micros() >= cfg.cooldown.as_micros(),
                            "seed {seed}: windows not serialized ({end:?} -> {at:?})"
                        );
                    }
                    if let Some(prev) = last_restore_of[*replica as usize] {
                        prop_assert!(
                            at.since(prev).as_micros() >= cfg.replica_cooldown.as_micros(),
                            "seed {seed}: replica {replica} re-recovered too soon"
                        );
                    }
                }
                Actuation::Restore { replica } => {
                    prop_assert!(down.contains(replica), "restore without takedown");
                    down.retain(|r| r != replica);
                    last_restore = Some(*at);
                    last_restore_of[*replica as usize] = Some(*at);
                }
                _ => {}
            }
        }
    }
}
