//! Multi-site failover contract (E13 tentpole): a severed site in a
//! redundant topology fails over to a degraded epoch and rides through,
//! losing a site AND an intrusion in the survivor site provably trips
//! the invariant checker, and the two Prime liveness fixes the E13
//! scenario exposed stay fixed.

use chaos::driver::ChaosDriver;
use chaos::invariants::{CheckerConfig, InvariantChecker};
use chaos::plan::{ChaosPlan, Fault, ScheduledFault};
use plc::topology::Scenario;
use prime::byzantine::ByzMode;
use prime::replica::Timing;
use prime::types::Config as PrimeConfig;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;
use spire::site::SiteTopology;

fn fast_timing() -> Timing {
    Timing {
        aru_interval: SimDuration::from_millis(10),
        pp_interval: SimDuration::from_millis(10),
        suspect_timeout: SimDuration::from_millis(2_000),
        checkpoint_interval: 20,
        catchup_timeout: SimDuration::from_millis(300),
    }
}

/// A multi-site E13-style deployment: 6 replicas spread over `sites`,
/// fast timing, 100 ms polling, dedup-table transfer armed, warmed up
/// for one second.
fn multisite_deployment(seed: u64, sites: SiteTopology) -> (Deployment, PrimeConfig) {
    let mut prime_cfg = PrimeConfig::plant();
    prime_cfg.transfer_dedup = true;
    let cfg = SpireConfig::minimal(prime_cfg, Scenario::PlantSubset).with_sites(sites);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..prime_cfg.n() {
        d.replica_mut(i).set_timing(fast_timing());
    }
    d.proxy_mut(0)
        .set_poll_interval(SimDuration::from_millis(100));
    d.proxy_mut(0).verbose_updates = true;
    d.run_for(SimDuration::from_secs(1));
    (d, prime_cfg)
}

fn execs(d: &Deployment, replicas: &[u32]) -> Vec<u64> {
    replicas
        .iter()
        .map(|&i| d.replica(i).replica.exec_seq())
        .collect()
}

/// The E13 measure-before stage: three breaker flips with 1 s windows,
/// jittered exactly like `bench::site_experiment::measure_reactions`.
/// Exists here because the timing alignment these flips produce is what
/// originally wedged Prime (see `severed_site_fails_over_...` below).
fn measure_flips(d: &mut Deployment) {
    let tag = d.proxy(0).scenario().tag();
    d.hmi_mut(0).hmi.set_sensor_breaker(tag, 1);
    let mut state = d.plc(0).positions()[1];
    for i in 0..3u64 {
        d.run_for(SimDuration::from_micros((i * 7_919) % 20_000));
        state = !state;
        let at = d.now();
        d.plc_mut(0).force_breaker(1, state, at);
        d.run_for(SimDuration::from_secs(1));
    }
}

/// The positive control and the regression pin for the stale
/// pre-prepare fix: in a 3+3 deployment, the E13 measure-before flips
/// followed by a site sever + failover must leave the survivor site
/// ordering new updates during the sever, and healing + failback must
/// reconverge all six replicas with zero invariant violations.
///
/// Before the fix in `prime::replica::on_pre_prepare` /
/// `maybe_propose`, a pre-prepare cut off from its prepare quorum by
/// the sever left a stale old-view entry that blocked that sequence in
/// every later view — this exact scenario wedged permanently.
#[test]
fn severed_site_fails_over_and_reconverges_after_heal() {
    let (mut d, prime_cfg) = multisite_deployment(42, SiteTopology::three_plus_three());
    measure_flips(&mut d);

    let mut checker = InvariantChecker::new(CheckerConfig::for_prime(&prime_cfg), &d);
    let plan = ChaosPlan::site_failover(
        1,
        SimDuration::from_millis(200),
        SimDuration::from_secs(600),
    );
    let mut driver = ChaosDriver::new(plan);
    let step = SimDuration::from_millis(100);

    driver.run_soak(&mut d, &mut checker, SimDuration::from_secs(1), step);
    let survivors = [0u32, 1, 2];
    let at_sever = execs(&d, &survivors);
    driver.run_soak(&mut d, &mut checker, SimDuration::from_secs(5), step);
    let during = execs(&d, &survivors);
    assert!(
        during.iter().zip(&at_sever).all(|(now, then)| now > then),
        "survivor site must keep ordering during the sever: {at_sever:?} -> {during:?}"
    );

    driver.heal_all(&mut d, &mut checker);
    driver.run_quiesce(&mut d, &mut checker, SimDuration::from_secs(10), step);

    let all = execs(&d, &[0, 1, 2, 3, 4, 5]);
    let max = *all.iter().max().unwrap();
    assert!(
        all.iter().all(|&e| e == max),
        "all six replicas must reconverge after failback: {all:?}"
    );
    assert!(max > during[0], "ordering must continue after failback");
    for report in checker.reports() {
        assert_eq!(
            report.violations, 0,
            "{} tripped during a survivable site failover",
            report.name
        );
    }
}

/// Negative control (the issue's satellite): a 3+3 deployment that
/// loses one full site AND suffers an intrusion in the survivor site
/// has only 2 of the degraded epoch's 3 members left — below any
/// quorum — so with the checker told to treat the system as within
/// budget, the bounded-delay invariant MUST trip. Mirrors the E12
/// beyond-budget negative controls: a checker that cannot fail
/// verifies nothing.
#[test]
fn site_loss_plus_survivor_intrusion_trips_bounded_delay() {
    let (mut d, prime_cfg) = multisite_deployment(42, SiteTopology::three_plus_three());
    let horizon = SimDuration::from_secs(12);
    let plan = ChaosPlan {
        faults: vec![
            ScheduledFault {
                at: SimDuration::from_millis(200),
                duration: horizon,
                fault: Fault::SiteSever { site: 1 },
            },
            ScheduledFault {
                at: SimDuration::from_millis(500),
                duration: horizon,
                fault: Fault::ByzFlip {
                    replica: 0,
                    mode: ByzMode::Crashed,
                },
            },
        ],
    };
    let mut cfg = CheckerConfig::for_prime(&prime_cfg);
    cfg.assume_within_budget = true;
    let mut checker = InvariantChecker::new(cfg, &d);
    let mut driver = ChaosDriver::new(plan);
    driver.run_soak(&mut d, &mut checker, horizon, SimDuration::from_millis(100));
    let bounded_delay = &checker.reports()[2];
    assert_eq!(bounded_delay.name, "bounded-delay");
    assert!(
        bounded_delay.violations > 0,
        "losing a site plus an intrusion in the survivor site must stall \
         the degraded epoch past the delay bound"
    );
}

/// Regression pin for the view-change retransmission fix: a 3-3 split
/// with the membership left static (no failover) gives neither side an
/// ordering quorum, so survivors vote for a view change while the
/// links are down. Before the fix in `prime::replica::tick`, those
/// votes were broadcast once into the severed links and never again —
/// after the heal both sides sat `in_view_change` forever and ordering
/// never resumed. With retransmission, every replica must get past its
/// pre-sever execution once the site heals.
#[test]
fn static_membership_split_recovers_ordering_after_heal() {
    let (mut d, _) = multisite_deployment(42, SiteTopology::three_plus_three());
    measure_flips(&mut d);
    d.run_for(SimDuration::from_millis(200));

    d.sever_site(1);
    d.run_for(SimDuration::from_secs(6));
    let during = execs(&d, &[0, 1, 2, 3, 4, 5]);

    d.heal_site(1);
    d.run_for(SimDuration::from_secs(8));
    let after = execs(&d, &[0, 1, 2, 3, 4, 5]);
    assert!(
        after.iter().zip(&during).all(|(a, b)| a > b),
        "ordering must resume on every replica after the split heals: \
         {during:?} -> {after:?}"
    );
}

/// A sever in the 2+2+1+1 topology keeps 4 of 6 replicas — a native
/// ordering quorum — so ordering must continue with NO membership
/// change at all, and the checker stays green throughout.
#[test]
fn two_two_one_one_sever_keeps_native_quorum() {
    let (mut d, prime_cfg) = multisite_deployment(42, SiteTopology::two_two_one_one());
    let mut checker = InvariantChecker::new(CheckerConfig::for_prime(&prime_cfg), &d);
    let plan = ChaosPlan::site_failover(
        1,
        SimDuration::from_millis(200),
        SimDuration::from_secs(600),
    );
    let mut driver = ChaosDriver::new(plan);
    let step = SimDuration::from_millis(100);
    driver.run_soak(&mut d, &mut checker, SimDuration::from_secs(1), step);
    let survivors = [0u32, 1, 4, 5];
    let at_sever = execs(&d, &survivors);
    driver.run_soak(&mut d, &mut checker, SimDuration::from_secs(5), step);
    let during = execs(&d, &survivors);
    assert!(
        during.iter().zip(&at_sever).all(|(now, then)| now > then),
        "a native quorum must keep ordering during the sever: {at_sever:?} -> {during:?}"
    );
    driver.heal_all(&mut d, &mut checker);
    driver.run_quiesce(&mut d, &mut checker, SimDuration::from_secs(10), step);
    for report in checker.reports() {
        assert_eq!(
            report.violations, 0,
            "{} tripped during a native-quorum site sever",
            report.name
        );
    }
}
