//! `spire-sim` CLI contract: output-file failures surface as a nonzero
//! exit code with a clear error, instead of vanishing on stderr while
//! the process reports success.

use std::process::Command;

fn spire_sim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spire-sim"))
        .args(args)
        .output()
        .expect("spire-sim runs")
}

/// `--days 0` keeps the soak to its warmup + quiescence tail, so these
/// stay fast while still exercising the JSON writer.
#[test]
fn unwritable_json_path_exits_nonzero_with_clear_error() {
    let out = spire_sim(&["e12", "--days", "0", "--json", "/nonexistent-dir/e12.json"]);
    assert!(
        !out.status.success(),
        "unwritable --json must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed to write /nonexistent-dir/e12.json"),
        "stderr should name the path and the error, got: {stderr}"
    );
}

#[test]
fn e16_unwritable_json_path_exits_nonzero_with_clear_error() {
    let out = spire_sim(&["e16", "--days", "0", "--json", "/nonexistent-dir/e16.json"]);
    assert!(
        !out.status.success(),
        "unwritable e16 --json must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed to write /nonexistent-dir/e16.json"),
        "stderr should name the path and the error, got: {stderr}"
    );
    // Both campaign tables still print — only the file write failed.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("e16a campaign") && stdout.contains("e16b campaign"),
        "campaign tables should print before the write fails, got: {stdout}"
    );
}

#[test]
fn unwritable_trace_export_exits_nonzero_with_clear_error() {
    let out = spire_sim(&["e5", "--trace-export", "/nonexistent-dir/trace.json"]);
    assert!(
        !out.status.success(),
        "unwritable --trace-export must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed to write /nonexistent-dir/trace.json"),
        "stderr should name the path and the error, got: {stderr}"
    );
}

#[test]
fn unwritable_prof_path_exits_nonzero_with_clear_error() {
    let out = spire_sim(&[
        "e11",
        "--steps",
        "1",
        "--prof",
        "/nonexistent-dir/e11.folded",
    ]);
    assert!(
        !out.status.success(),
        "unwritable --prof must fail the process"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed to write /nonexistent-dir/e11.folded"),
        "stderr should name the path and the error, got: {stderr}"
    );
    // The attribution report still prints — only the file write failed.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("telescoping: exact"),
        "attribution should print before the write fails, got: {stdout}"
    );
}

#[test]
fn writable_prof_path_exits_zero_and_writes_folded_stacks() {
    let dir = std::env::temp_dir().join("spire-sim-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("e11.folded");
    let path_str = path.to_str().expect("utf-8 path");
    let out = spire_sim(&["e11", "--steps", "1", "--prof", path_str]);
    assert!(out.status.success(), "writable --prof must succeed");
    let folded = std::fs::read_to_string(&path).expect("folded written");
    assert!(
        folded.lines().all(|l| {
            let mut parts = l.rsplitn(2, ' ');
            let value = parts.next().unwrap_or("");
            parts.next().is_some() && value.parse::<u64>().is_ok()
        }) && !folded.is_empty(),
        "every line is `stack value`, got: {folded}"
    );
    assert!(
        folded.contains("prime;order"),
        "protocol phases appear in the folded stacks, got: {folded}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn writable_json_path_exits_zero_and_writes_the_file() {
    let dir = std::env::temp_dir().join("spire-sim-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("e12.json");
    let path_str = path.to_str().expect("utf-8 path");
    let out = spire_sim(&["e12", "--days", "0", "--json", path_str]);
    assert!(out.status.success(), "writable --json must succeed");
    let json = std::fs::read_to_string(&path).expect("json written");
    assert!(json.contains("\"all_green\""));
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_command_exits_nonzero_and_lists_commands() {
    let out = spire_sim(&["e99"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command: e99"));
    assert!(stderr.contains("e12"), "help should list e12");
}
