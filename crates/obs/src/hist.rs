//! Log-linear latency histogram.
//!
//! Values 0–31 get exact buckets; above that, each power-of-two range
//! is split into 16 linear sub-buckets (HDR-histogram style), bounding
//! relative error at ~6%. That is plenty for asserting shapes like
//! "median reaction under 200 ms" while keeping the whole structure a
//! flat array of counts — deterministic, allocation-free recording.

/// Exact buckets for values below this threshold.
const LINEAR_LIMIT: u64 = 32;
/// Sub-buckets per power-of-two range above the linear region.
const SUBBUCKETS: usize = 16;
/// Smallest exponent in the log region (2^5 == LINEAR_LIMIT).
const FIRST_EXP: u32 = 5;
/// Total bucket count: 32 exact + 16 per exponent 5..=63.
const BUCKETS: usize = LINEAR_LIMIT as usize + (64 - FIRST_EXP as usize) * SUBBUCKETS;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let k = 63 - v.leading_zeros();
    let sub = ((v >> (k - 4)) & 0xF) as usize;
    LINEAR_LIMIT as usize + (k - FIRST_EXP) as usize * SUBBUCKETS + sub
}

/// Largest value mapping to bucket `idx` (inclusive upper edge).
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_LIMIT as usize {
        return idx as u64;
    }
    let b = idx - LINEAR_LIMIT as usize;
    let k = FIRST_EXP + (b / SUBBUCKETS) as u32;
    let sub = (b % SUBBUCKETS) as u64;
    let width = 1u64 << (k - 4);
    let lower = (16 + sub) << (k - 4);
    lower + (width - 1)
}

/// A histogram of non-negative integer samples (microseconds, sizes).
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all bucket counts — equals [`count`](Self::count) by
    /// construction; exposed so tests can assert conservation.
    pub fn bucket_total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q ∈ [0, 1]`: the upper edge of the bucket
    /// holding the rank-`⌈q·n⌉` sample, clamped to the observed
    /// min/max. Monotone in `q`, so `p50 ≤ p99 ≤ max` always holds.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Snapshot of the headline statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram({:?})", self.summary())
    }
}

/// Headline statistics of one histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Median (bucket upper edge).
    pub p50: u64,
    /// 99th percentile (bucket upper edge).
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Mean, rounded down.
    pub mean: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_domain_in_order() {
        // Every value maps to a bucket whose upper edge is >= the value,
        // and bucket upper edges are non-decreasing in index.
        let probes = [0, 1, 31, 32, 33, 100, 1_000, 65_535, 1 << 40, u64::MAX];
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "v {v} belongs in a lower bucket");
            }
        }
        for idx in 1..BUCKETS {
            assert!(bucket_upper(idx) > bucket_upper(idx - 1));
        }
    }

    #[test]
    fn exact_in_linear_region() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 17, 31] {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_total(), 4);
    }

    #[test]
    fn relative_error_bounded_in_log_region() {
        let mut h = Histogram::new();
        let v = 70_000u64; // ~70 ms in µs
        h.record(v);
        let q = h.quantile(0.5);
        assert!(q >= v);
        assert!((q - v) as f64 / v as f64 <= 0.0625, "q={q}");
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::new();
        for i in 1..=1_000u64 {
            h.record(i * 37);
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 37_000);
        assert_eq!(s.count, 1_000);
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                min: 0,
                p50: 0,
                p99: 0,
                max: 0,
                mean: 0
            }
        );
    }
}
