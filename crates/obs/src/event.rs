//! Typed journal records and their canonical byte encoding.
//!
//! The journal is the run's narrative: every security- or
//! availability-relevant occurrence lands here as a typed record with
//! the simulated timestamp. The byte encoding is fixed (tag byte +
//! little-endian fields) so a run hashes to a stable digest — the
//! determinism tests compare digests across same-seed runs.

use std::fmt;

use crate::trace::{SpanId, Stage, TraceId};

/// Why the network layer dropped a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropKind {
    /// Random link loss.
    Loss,
    /// Rejected by a firewall rule.
    Firewall,
    /// ARP request from an unauthorized address.
    Arp,
    /// Destination NIC or port not present.
    NoRoute,
}

impl DropKind {
    fn tag(self) -> u8 {
        match self {
            DropKind::Loss => 0,
            DropKind::Firewall => 1,
            DropKind::Arp => 2,
            DropKind::NoRoute => 3,
        }
    }
}

/// One structured journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The network dropped a frame at `node`.
    PacketDrop {
        /// Node (switch or host) where the drop happened.
        node: u32,
        /// Drop cause.
        kind: DropKind,
    },
    /// A Spines daemon rejected an unauthenticated or forged message.
    AuthFailure {
        /// Rejecting daemon id.
        daemon: u32,
    },
    /// A Prime replica installed a new view.
    ViewChange {
        /// Replica that installed the view.
        replica: u32,
        /// The installed view number.
        view: u64,
    },
    /// A replica was taken down for proactive or reactive recovery.
    RecoveryStart {
        /// Recovering replica id.
        replica: u32,
    },
    /// A recovered replica rejoined with state transferred.
    RecoveryEnd {
        /// Recovered replica id.
        replica: u32,
    },
    /// An HMI emitted a display frame after collecting enough votes.
    FrameEmit {
        /// Emitting HMI id.
        hmi: u32,
        /// Frame sequence number that crossed the vote threshold.
        seq: u64,
    },
    /// A causal-tracing span began (the record's timestamp is the span
    /// start). Span trees fold into the run digest like any other event.
    SpanStart {
        /// Trace this span belongs to.
        trace: TraceId,
        /// The span's id (unique within the run).
        span: SpanId,
        /// Parent span, `None` for a trace root.
        parent: Option<SpanId>,
        /// Pipeline stage the span attributes time to.
        stage: Stage,
        /// Component id (replica/proxy/HMI index) that stamped it.
        node: u32,
    },
    /// A causal-tracing span ended (the record's timestamp is the end).
    SpanEnd {
        /// Trace the span belongs to.
        trace: TraceId,
        /// The ending span.
        span: SpanId,
    },
    /// The scheduler handed the hub a clock earlier than the current one.
    /// The hub keeps the monotonic clock (span durations can never
    /// underflow) and journals the rejected value instead.
    ClockSkew {
        /// The monotonic clock that was kept, in microseconds.
        from_us: u64,
        /// The rejected earlier timestamp, in microseconds.
        to_us: u64,
    },
    /// The chaos driver injected a fault (`kind` is the
    /// `chaos::FaultKind` tag; `target` the replica/link it hit).
    ChaosInject {
        /// Fault-kind tag.
        kind: u8,
        /// Target component (replica id for most kinds).
        target: u32,
    },
    /// The chaos driver healed a previously injected fault.
    ChaosHeal {
        /// Fault-kind tag.
        kind: u8,
        /// Target component (replica id for most kinds).
        target: u32,
    },
    /// The continuous invariant checker recorded a violation
    /// (`invariant` is the checker's invariant tag).
    InvariantViolation {
        /// Invariant tag (see `chaos::invariants`).
        invariant: u8,
        /// Invariant-specific detail (e.g. the execution sequence or the
        /// replica involved).
        detail: u64,
    },
    /// Periodic per-replica Prime health snapshot (the flight recorder).
    /// Emitted every `prof::health_every()` protocol ticks; off by
    /// default so historical digests are untouched, and fully
    /// seed-deterministic when on (gauges are pure replica state read at
    /// deterministic tick times).
    ReplicaHealth {
        /// Snapshotting replica id.
        replica: u32,
        /// Current view number.
        view: u64,
        /// Sum of per-origin pre-ordering ARU counters (cumulative
        /// updates contiguously received across all origins).
        aru: u64,
        /// PO-queue depth: updates received into pre-ordering but not
        /// yet executed here (eligible-but-unplanned plus the planned
        /// execution backlog). Drains to ~0 in a healthy quiet cluster.
        po_queue: u32,
        /// Ordering sequences proposed but not yet committed here.
        in_flight: u32,
        /// Turnaround-time estimate: age of the oldest known unordered
        /// update, microseconds (0 = nothing waiting).
        tat_us: u64,
        /// Whether a catch-up (state transfer) is in progress.
        catching_up: bool,
    },
    /// Periodic per-link Spines queue-depth snapshot, journaled by the
    /// replica host on the same cadence as [`Event::ReplicaHealth`].
    LinkHealth {
        /// Owning Spines daemon id.
        daemon: u32,
        /// Which overlay: 0 = internal (replication), 1 = external.
        link: u8,
        /// Forwarding fair-queue depth at snapshot time.
        depth: u32,
    },
    /// A MANA detector scored an observation window for a subject
    /// (replica or proxy). Off by default — instances journal only after
    /// `mana::ids::ManaInstance::journal_scores` arms them — so
    /// historical digests are untouched; when armed the scores fold into
    /// the digest like any other record.
    AnomalyScore {
        /// Subject id (replica index, or `1000 + p` for proxy `p`).
        replica: u32,
        /// Peak per-feature z-score of the window, in fixed-point
        /// thousandths (f64 scores are quantized so the encoding is
        /// byte-stable).
        score_milli: u64,
    },
    /// The response controller moved between degraded-mode states.
    ResponseTransition {
        /// Previous `response::ResponseState` tag.
        from: u8,
        /// New state tag.
        to: u8,
        /// Transition-cause tag (see `response::controller`).
        reason: u8,
    },
    /// The response controller fired an actuator.
    ResponseActuation {
        /// Actuator tag: 0 = take-down, 1 = restore, 2 = throttle,
        /// 3 = unthrottle.
        actuator: u8,
        /// Target component (replica id or proxy id).
        target: u32,
        /// Actuator parameter (e.g. throttle interval in microseconds).
        param: u64,
    },
}

impl Event {
    /// Appends the canonical encoding: tag byte, then fields in
    /// little-endian. Field widths are fixed per variant.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Event::PacketDrop { node, kind } => {
                out.push(1);
                out.extend_from_slice(&node.to_le_bytes());
                out.push(kind.tag());
            }
            Event::AuthFailure { daemon } => {
                out.push(2);
                out.extend_from_slice(&daemon.to_le_bytes());
            }
            Event::ViewChange { replica, view } => {
                out.push(3);
                out.extend_from_slice(&replica.to_le_bytes());
                out.extend_from_slice(&view.to_le_bytes());
            }
            Event::RecoveryStart { replica } => {
                out.push(4);
                out.extend_from_slice(&replica.to_le_bytes());
            }
            Event::RecoveryEnd { replica } => {
                out.push(5);
                out.extend_from_slice(&replica.to_le_bytes());
            }
            Event::FrameEmit { hmi, seq } => {
                out.push(6);
                out.extend_from_slice(&hmi.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Event::SpanStart {
                trace,
                span,
                parent,
                stage,
                node,
            } => {
                out.push(7);
                out.extend_from_slice(&trace.0.to_le_bytes());
                out.extend_from_slice(&span.0.to_le_bytes());
                // Span ids start at 1, so 0 encodes "root".
                out.extend_from_slice(&parent.map_or(0, |p| p.0).to_le_bytes());
                out.push(stage.tag());
                out.extend_from_slice(&node.to_le_bytes());
            }
            Event::SpanEnd { trace, span } => {
                out.push(8);
                out.extend_from_slice(&trace.0.to_le_bytes());
                out.extend_from_slice(&span.0.to_le_bytes());
            }
            Event::ClockSkew { from_us, to_us } => {
                out.push(9);
                out.extend_from_slice(&from_us.to_le_bytes());
                out.extend_from_slice(&to_us.to_le_bytes());
            }
            Event::ChaosInject { kind, target } => {
                out.push(10);
                out.push(*kind);
                out.extend_from_slice(&target.to_le_bytes());
            }
            Event::ChaosHeal { kind, target } => {
                out.push(11);
                out.push(*kind);
                out.extend_from_slice(&target.to_le_bytes());
            }
            Event::InvariantViolation { invariant, detail } => {
                out.push(12);
                out.push(*invariant);
                out.extend_from_slice(&detail.to_le_bytes());
            }
            Event::ReplicaHealth {
                replica,
                view,
                aru,
                po_queue,
                in_flight,
                tat_us,
                catching_up,
            } => {
                out.push(13);
                out.extend_from_slice(&replica.to_le_bytes());
                out.extend_from_slice(&view.to_le_bytes());
                out.extend_from_slice(&aru.to_le_bytes());
                out.extend_from_slice(&po_queue.to_le_bytes());
                out.extend_from_slice(&in_flight.to_le_bytes());
                out.extend_from_slice(&tat_us.to_le_bytes());
                out.push(u8::from(*catching_up));
            }
            Event::LinkHealth {
                daemon,
                link,
                depth,
            } => {
                out.push(14);
                out.extend_from_slice(&daemon.to_le_bytes());
                out.push(*link);
                out.extend_from_slice(&depth.to_le_bytes());
            }
            Event::AnomalyScore {
                replica,
                score_milli,
            } => {
                out.push(15);
                out.extend_from_slice(&replica.to_le_bytes());
                out.extend_from_slice(&score_milli.to_le_bytes());
            }
            Event::ResponseTransition { from, to, reason } => {
                out.push(16);
                out.push(*from);
                out.push(*to);
                out.push(*reason);
            }
            Event::ResponseActuation {
                actuator,
                target,
                param,
            } => {
                out.push(17);
                out.push(*actuator);
                out.extend_from_slice(&target.to_le_bytes());
                out.extend_from_slice(&param.to_le_bytes());
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::PacketDrop { node, kind } => write!(f, "drop at node {node} ({kind:?})"),
            Event::AuthFailure { daemon } => write!(f, "auth failure at daemon {daemon}"),
            Event::ViewChange { replica, view } => {
                write!(f, "replica {replica} installed view {view}")
            }
            Event::RecoveryStart { replica } => write!(f, "recovery of replica {replica} begins"),
            Event::RecoveryEnd { replica } => write!(f, "replica {replica} recovered"),
            Event::FrameEmit { hmi, seq } => write!(f, "hmi {hmi} emitted frame {seq}"),
            Event::SpanStart {
                trace,
                span,
                parent,
                stage,
                node,
            } => match parent {
                Some(p) => write!(
                    f,
                    "span t{trace}.s{span} {stage} at node {node} (parent s{p})"
                ),
                None => write!(f, "span t{trace}.s{span} {stage} at node {node} (root)"),
            },
            Event::SpanEnd { trace, span } => write!(f, "span t{trace}.s{span} end"),
            Event::ClockSkew { from_us, to_us } => {
                write!(f, "clock skew rejected: {from_us}us -> {to_us}us")
            }
            Event::ChaosInject { kind, target } => {
                write!(f, "chaos inject kind {kind} on target {target}")
            }
            Event::ChaosHeal { kind, target } => {
                write!(f, "chaos heal kind {kind} on target {target}")
            }
            Event::InvariantViolation { invariant, detail } => {
                write!(f, "invariant {invariant} violated (detail {detail})")
            }
            Event::ReplicaHealth {
                replica,
                view,
                aru,
                po_queue,
                in_flight,
                tat_us,
                catching_up,
            } => write!(
                f,
                "health r{replica}: view {view} aru {aru} po_queue {po_queue} \
                 in_flight {in_flight} tat {tat_us}us catching_up {catching_up}"
            ),
            Event::LinkHealth {
                daemon,
                link,
                depth,
            } => {
                let overlay = if *link == 0 { "int" } else { "ext" };
                write!(f, "health link d{daemon} {overlay}: queue depth {depth}")
            }
            Event::AnomalyScore {
                replica,
                score_milli,
            } => write!(f, "anomaly score {score_milli}m on subject {replica}"),
            Event::ResponseTransition { from, to, reason } => {
                write!(f, "response state {from} -> {to} (reason {reason})")
            }
            Event::ResponseActuation {
                actuator,
                target,
                param,
            } => write!(
                f,
                "response actuator {actuator} on target {target} (param {param})"
            ),
        }
    }
}

/// An [`Event`] plus the simulated time it was journaled at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Simulated time in microseconds.
    pub at_us: u64,
    /// The record itself.
    pub event: Event,
}

impl TimedEvent {
    /// Appends timestamp then event encoding.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.at_us.to_le_bytes());
        self.event.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_are_distinct_per_variant_and_payload() {
        let events = [
            Event::PacketDrop {
                node: 1,
                kind: DropKind::Loss,
            },
            Event::PacketDrop {
                node: 1,
                kind: DropKind::Firewall,
            },
            Event::PacketDrop {
                node: 2,
                kind: DropKind::Loss,
            },
            Event::AuthFailure { daemon: 1 },
            Event::ViewChange {
                replica: 1,
                view: 1,
            },
            Event::ViewChange {
                replica: 1,
                view: 2,
            },
            Event::RecoveryStart { replica: 1 },
            Event::RecoveryEnd { replica: 1 },
            Event::FrameEmit { hmi: 0, seq: 9 },
            Event::SpanStart {
                trace: TraceId(1),
                span: SpanId(1),
                parent: None,
                stage: Stage::Detect,
                node: 0,
            },
            Event::SpanStart {
                trace: TraceId(1),
                span: SpanId(1),
                parent: Some(SpanId(1)),
                stage: Stage::Detect,
                node: 0,
            },
            Event::SpanStart {
                trace: TraceId(1),
                span: SpanId(1),
                parent: None,
                stage: Stage::Render,
                node: 0,
            },
            Event::SpanEnd {
                trace: TraceId(1),
                span: SpanId(1),
            },
            Event::SpanEnd {
                trace: TraceId(1),
                span: SpanId(2),
            },
            Event::ClockSkew {
                from_us: 2,
                to_us: 1,
            },
            Event::ChaosInject { kind: 0, target: 1 },
            Event::ChaosInject { kind: 1, target: 1 },
            Event::ChaosHeal { kind: 0, target: 1 },
            Event::ChaosHeal { kind: 0, target: 2 },
            Event::InvariantViolation {
                invariant: 0,
                detail: 1,
            },
            Event::InvariantViolation {
                invariant: 1,
                detail: 1,
            },
            Event::ReplicaHealth {
                replica: 0,
                view: 1,
                aru: 2,
                po_queue: 3,
                in_flight: 4,
                tat_us: 5,
                catching_up: false,
            },
            Event::ReplicaHealth {
                replica: 0,
                view: 1,
                aru: 2,
                po_queue: 3,
                in_flight: 4,
                tat_us: 5,
                catching_up: true,
            },
            Event::LinkHealth {
                daemon: 1,
                link: 0,
                depth: 7,
            },
            Event::LinkHealth {
                daemon: 1,
                link: 1,
                depth: 7,
            },
            Event::AnomalyScore {
                replica: 2,
                score_milli: 6500,
            },
            Event::AnomalyScore {
                replica: 2,
                score_milli: 6501,
            },
            Event::ResponseTransition {
                from: 0,
                to: 1,
                reason: 0,
            },
            Event::ResponseTransition {
                from: 0,
                to: 1,
                reason: 1,
            },
            Event::ResponseActuation {
                actuator: 0,
                target: 3,
                param: 0,
            },
            Event::ResponseActuation {
                actuator: 2,
                target: 3,
                param: 500_000,
            },
        ];
        let encoded: Vec<Vec<u8>> = events
            .iter()
            .map(|e| {
                let mut buf = Vec::new();
                e.encode_into(&mut buf);
                buf
            })
            .collect();
        for i in 0..encoded.len() {
            for j in (i + 1)..encoded.len() {
                assert_ne!(encoded[i], encoded[j], "{:?} vs {:?}", events[i], events[j]);
            }
        }
    }

    #[test]
    fn timed_encoding_prefixes_timestamp() {
        let rec = TimedEvent {
            at_us: 0x0102,
            event: Event::AuthFailure { daemon: 7 },
        };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        assert_eq!(&buf[..8], &0x0102u64.to_le_bytes());
        assert_eq!(buf[8], 2);
    }

    #[test]
    fn display_is_human_readable() {
        let s = format!(
            "{}",
            Event::ViewChange {
                replica: 3,
                view: 4
            }
        );
        assert!(s.contains("replica 3") && s.contains("view 4"));
    }
}
