//! Experiment harnesses regenerating every figure and experiment of the
//! paper (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
//! recorded outcomes).
//!
//! Each `eN_*` function runs one experiment deterministically from a seed
//! and returns a structured result with a `render()`-style text table, so
//! the same code backs the Criterion benches, the runnable examples, and
//! the integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos_experiment;
pub mod figures;
pub mod harness;
pub mod mana_experiment;
pub mod plant_experiments;
pub mod recovery_experiments;
pub mod redteam_experiments;
pub mod response_experiment;
pub mod saturation;
pub mod site_experiment;

pub use chaos_experiment::{chaos_json, e12_chaos_soak, render_chaos};
pub use figures::{fig1_conventional, fig2_spire, fig4_hmi};
pub use harness::{experiment_fingerprint, run_bench, RunMeta, GOLDEN_SEED};
pub use mana_experiment::e7_mana_detection;
pub use plant_experiments::{e4_plant_deployment, e5_reaction_time, e5_reaction_time_traced};
pub use recovery_experiments::{e6_ground_truth, e8_recovery_ablation, e9_diversity_ablation};
pub use redteam_experiments::{
    e10_hardening_ablation, e1_commercial_attacks, e2_spire_network_attacks, e3_replica_excursion,
};
pub use saturation::{e11_default_rates, e11_saturation};
pub use site_experiment::{e13_site_failover, render_site_failover, site_failover_json};
