//! The SCADA historian (the "PI Server" on the enterprise network in
//! Figure 3).
//!
//! §III-A: "SCADA historians are more similar to traditional database
//! applications and cannot recover historical state automatically after an
//! assumption breach." The historian records events append-only; after a
//! breach wipes it, [`Historian::recover_from_field`] can only restore the
//! *current* instant — history is gone, by construction.

use simnet::time::SimTime;

/// One archived event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistoryRecord {
    /// When the event was archived.
    pub at: SimTime,
    /// Scenario tag.
    pub scenario: String,
    /// Event description (e.g. `B57 opened`).
    pub event: String,
}

/// Result of attempting post-breach recovery.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldRecovery {
    /// Records reconstructed (only the present snapshot).
    pub recovered_records: usize,
    /// Records lost forever.
    pub lost_records: usize,
}

/// An append-only event archive.
#[derive(Clone, Debug, Default)]
pub struct Historian {
    records: Vec<HistoryRecord>,
    /// Count of records lost to breaches (for reporting).
    pub lost_to_breaches: usize,
}

impl Historian {
    /// An empty historian.
    pub fn new() -> Self {
        Self::default()
    }

    /// Archives an event.
    pub fn archive(&mut self, at: SimTime, scenario: impl Into<String>, event: impl Into<String>) {
        self.records.push(HistoryRecord {
            at,
            scenario: scenario.into(),
            event: event.into(),
        });
    }

    /// All records.
    pub fn records(&self) -> &[HistoryRecord] {
        &self.records
    }

    /// Number of archived records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// An assumption breach destroys the archive.
    pub fn breach_wipe(&mut self) {
        self.lost_to_breaches += self.records.len();
        self.records.clear();
    }

    /// Post-breach recovery from field devices: the devices know only
    /// their *current* state, so exactly one snapshot record per scenario
    /// can be reconstructed — the history itself is unrecoverable.
    pub fn recover_from_field(
        &mut self,
        now: SimTime,
        field_state: &[(String, Vec<bool>)],
    ) -> FieldRecovery {
        let lost = self.lost_to_breaches;
        for (scenario, positions) in field_state {
            let summary: Vec<String> = positions
                .iter()
                .enumerate()
                .map(|(i, &c)| format!("b{i}={}", if c { "closed" } else { "open" }))
                .collect();
            self.archive(
                now,
                scenario.clone(),
                format!("post-breach snapshot: {}", summary.join(" ")),
            );
        }
        FieldRecovery {
            recovered_records: field_state.len(),
            lost_records: lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_and_read() {
        let mut h = Historian::new();
        assert!(h.is_empty());
        h.archive(SimTime(1), "jhu", "B57 opened");
        h.archive(SimTime(2), "jhu", "B57 closed");
        assert_eq!(h.len(), 2);
        assert_eq!(h.records()[0].event, "B57 opened");
    }

    #[test]
    fn breach_destroys_history_recovery_restores_only_present() {
        let mut h = Historian::new();
        for i in 0..100 {
            h.archive(SimTime(i), "plant", format!("event {i}"));
        }
        h.breach_wipe();
        assert!(h.is_empty());
        let result = h.recover_from_field(
            SimTime(1_000),
            &[("plant".to_string(), vec![true, false, true])],
        );
        assert_eq!(result.lost_records, 100);
        assert_eq!(result.recovered_records, 1);
        // Only the present snapshot exists now.
        assert_eq!(h.len(), 1);
        assert!(h.records()[0].event.contains("post-breach snapshot"));
        assert!(h.records()[0].event.contains("b1=open"));
    }
}
