//! The §V power-plant test deployment: six replicas (f=1, k=1), the
//! plant's real breakers plus emulated distribution and generation
//! scenarios, continuous operation with proactive recovery, and the
//! end-to-end reaction-time measurement against the commercial system.
//!
//! Run with: `cargo run --release --example power_plant`

use bench::plant_experiments::{e4_plant_deployment, e5_reaction_time, render_reaction};

fn main() {
    println!("== Six (compressed) days of continuous plant operation ==\n");
    let run = e4_plant_deployment(2018, 6, 30);
    println!(
        "simulated: {} days at {} s/day (time-compressed; cadences preserved)",
        run.days, run.seconds_per_day
    );
    println!("proactive recoveries completed: {}", run.recoveries);
    println!(
        "minimum updates executed across replicas: {}",
        run.min_executed
    );
    println!(
        "display frames across the 3 HMI locations: {}",
        run.hmi_frames
    );
    println!("view changes (leader replacements): {}", run.view_changes);
    println!(
        "longest gap between display updates: {}",
        run.longest_display_gap
    );
    println!(
        "replica state digests consistent: {}\n",
        run.replicas_consistent
    );

    println!("== The measurement device: breaker flip → HMI update ==\n");
    let reaction = e5_reaction_time(2018, 10);
    println!("{}", render_reaction(&reaction));
}
