//! Passive packet capture (span-port taps) feeding the MANA IDS.
//!
//! §III-C: monitoring "must be completely non-invasive ... receiving a
//! passive network traffic packet capture". Taps record *metadata only*
//! (addresses, ports, kinds, sizes) — payloads are typically encrypted and
//! MANA's models never rely on them, matching the paper's argument that
//! anomaly detection keeps working once SCADA traffic is encrypted.

use crate::packet::{ArpOp, EtherPayload, Frame, TransportKind};
use crate::switch::SwitchId;
use crate::time::SimTime;
use crate::types::{IpAddr, MacAddr, Port};

/// Identifies a capture tap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TapId(pub u32);

/// Protocol family of a captured frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CapturedProto {
    /// An ARP request or reply.
    Arp(ArpOp),
    /// An IP packet with transport kind.
    Ip(TransportKind),
}

/// One captured frame's metadata.
#[derive(Clone, Copy, Debug)]
pub struct PacketRecord {
    /// Capture timestamp.
    pub time: SimTime,
    /// Switch the tap observed (span port source).
    pub switch: SwitchId,
    /// Source MAC as seen on the wire.
    pub src_mac: MacAddr,
    /// Destination MAC as seen on the wire.
    pub dst_mac: MacAddr,
    /// Protocol family and transport kind.
    pub proto: CapturedProto,
    /// Source IP (unspecified for ARP).
    pub src_ip: IpAddr,
    /// Destination IP (unspecified for ARP).
    pub dst_ip: IpAddr,
    /// Source port (0 for non-transport frames).
    pub src_port: Port,
    /// Destination port (0 for non-transport frames).
    pub dst_port: Port,
    /// Frame size in bytes.
    pub size: u32,
}

impl PacketRecord {
    /// Builds a record from a frame observed at `switch` at `time`.
    pub fn from_frame(time: SimTime, switch: SwitchId, frame: &Frame) -> Self {
        match &frame.payload {
            EtherPayload::Ip(p) => PacketRecord {
                time,
                switch,
                src_mac: frame.src_mac,
                dst_mac: frame.dst_mac,
                proto: CapturedProto::Ip(p.kind),
                src_ip: p.src_ip,
                dst_ip: p.dst_ip,
                src_port: p.src_port,
                dst_port: p.dst_port,
                size: frame.wire_size() as u32,
            },
            EtherPayload::Arp(a) => PacketRecord {
                time,
                switch,
                src_mac: frame.src_mac,
                dst_mac: frame.dst_mac,
                proto: CapturedProto::Arp(a.op),
                src_ip: a.sender_ip,
                dst_ip: a.target_ip,
                src_port: Port(0),
                dst_port: Port(0),
                size: frame.wire_size() as u32,
            },
        }
    }

    /// Whether this record is an ARP reply (gratuitous or solicited).
    pub fn is_arp_reply(&self) -> bool {
        matches!(self.proto, CapturedProto::Arp(ArpOp::Reply))
    }

    /// Whether this record is a TCP SYN probe.
    pub fn is_syn(&self) -> bool {
        matches!(self.proto, CapturedProto::Ip(TransportKind::TcpSyn))
    }
}

/// A tap accumulates records; MANA drains them out-of-band.
#[derive(Clone, Debug, Default)]
pub struct Tap {
    records: Vec<PacketRecord>,
}

impl Tap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn record(&mut self, rec: PacketRecord) {
        self.records.push(rec);
    }

    /// All records captured so far.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Drains and returns all buffered records (MANA's periodic pull).
    pub fn drain(&mut self) -> Vec<PacketRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the tap buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ArpBody, Packet};
    use crate::types::NodeId;
    use bytes::Bytes;

    #[test]
    fn record_from_ip_frame() {
        let pkt = Packet::udp(
            IpAddr::new(10, 0, 0, 1),
            IpAddr::new(10, 0, 0, 2),
            Port(5),
            Port(6),
            Bytes::from_static(b"xyz"),
        );
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(1), 0),
            dst_mac: MacAddr::derived(NodeId(2), 0),
            payload: EtherPayload::Ip(pkt),
        };
        let rec = PacketRecord::from_frame(SimTime(9), SwitchId(3), &frame);
        assert_eq!(rec.size as usize, frame.wire_size());
        assert_eq!(rec.src_ip, IpAddr::new(10, 0, 0, 1));
        assert_eq!(rec.dst_port, Port(6));
        assert!(!rec.is_arp_reply());
        assert!(!rec.is_syn());
    }

    #[test]
    fn record_from_arp_frame() {
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(1), 0),
            dst_mac: MacAddr::BROADCAST,
            payload: EtherPayload::Arp(ArpBody {
                op: ArpOp::Reply,
                sender_ip: IpAddr::new(10, 0, 0, 7),
                sender_mac: MacAddr::derived(NodeId(1), 0),
                target_ip: IpAddr::new(10, 0, 0, 8),
            }),
        };
        let rec = PacketRecord::from_frame(SimTime(1), SwitchId(0), &frame);
        assert!(rec.is_arp_reply());
        assert_eq!(rec.src_ip, IpAddr::new(10, 0, 0, 7));
        assert_eq!(rec.src_port, Port(0));
    }

    #[test]
    fn tap_accumulates_and_drains() {
        let mut tap = Tap::new();
        assert!(tap.is_empty());
        let frame = Frame {
            src_mac: MacAddr::derived(NodeId(1), 0),
            dst_mac: MacAddr::derived(NodeId(2), 0),
            payload: EtherPayload::Ip(Packet::syn(
                IpAddr::new(1, 1, 1, 1),
                IpAddr::new(2, 2, 2, 2),
                Port(1),
                Port(2),
            )),
        };
        for t in 0..5 {
            tap.record(PacketRecord::from_frame(SimTime(t), SwitchId(0), &frame));
        }
        assert_eq!(tap.len(), 5);
        assert!(tap.records()[0].is_syn());
        let drained = tap.drain();
        assert_eq!(drained.len(), 5);
        assert!(tap.is_empty());
    }
}
