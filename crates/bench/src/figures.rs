//! Figures 1, 2, and 4 as constructed, exercised systems.
//! (Figure 3 is the combination of [`redteam::lab::CommercialLab`] and
//! the Spire deployment; E1/E2 exercise it directly.)

use plc::topology::{fig4_topology, Scenario};
use prime::types::Config as PrimeConfig;
use redteam::lab::CommercialLab;
use scada::commercial::CommercialHmi;
use simnet::time::SimDuration;
use spire::config::SpireConfig;
use spire::deploy::Deployment;
use spire::hardening::HardeningProfile;

/// Figure 1 — the conventional architecture, built and exercised: a
/// primary-backup master pair polling a PLC and driving an HMI. Returns a
/// text summary with the live HMI state.
pub fn fig1_conventional(seed: u64) -> String {
    let mut lab = CommercialLab::build(seed, false);
    lab.sim.run_for(SimDuration::from_secs(3));
    let hmi = lab.sim.process_ref::<CommercialHmi>(lab.hmi).expect("hmi");
    let mut out = String::new();
    out.push_str("Figure 1 — conventional SCADA architecture (live)\n");
    out.push_str("  [HMI] <-> [primary master | backup master] <-> [PLC on network]\n");
    out.push_str(&format!(
        "  HMI status seq {}: positions {:?}\n",
        hmi.last_seq, hmi.positions
    ));
    out
}

/// Figure 2 — the Spire architecture with six replicas (f=1, k=1): builds
/// the deployment and reports its structure and liveness.
pub fn fig2_spire(seed: u64) -> String {
    let cfg = SpireConfig::minimal(PrimeConfig::plant(), Scenario::PlantSubset);
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    d.run_for(SimDuration::from_secs(4));
    let mut out = String::new();
    out.push_str("Figure 2 — Spire architecture (live)\n");
    out.push_str(&format!(
        "  {} SCADA-master replicas (f=1, k=1) on isolated internal Spines network\n",
        d.cfg.n()
    ));
    out.push_str(&format!(
        "  internal switch: {:?}; external switch with {} proxies, {} HMIs\n",
        d.internal_switch.is_some(),
        d.cfg.proxies.len(),
        d.cfg.hmis
    ));
    out.push_str(&format!(
        "  PLC behind proxy on direct cable: {}\n",
        d.hardening.plc_behind_proxy
    ));
    out.push_str(&format!("  min executed after 4 s: {}\n", d.min_executed()));
    out
}

/// Figure 4 — the HMI's power-topology visualization, rendered from live
/// SCADA state after the breaker cycle ran for a while.
pub fn fig4_hmi(seed: u64) -> String {
    let cfg = SpireConfig::minimal(PrimeConfig::red_team(), Scenario::RedTeamDistribution)
        .with_cycle(
            Scenario::RedTeamDistribution,
            SimDuration::from_millis(400),
            3,
        );
    let mut d = Deployment::build(cfg, HardeningProfile::deployed(), seed);
    for i in 0..4 {
        d.replica_mut(i).set_timing(prime::replica::Timing {
            aru_interval: SimDuration::from_millis(10),
            pp_interval: SimDuration::from_millis(10),
            suspect_timeout: SimDuration::from_millis(2_000),
            checkpoint_interval: 20,
            catchup_timeout: SimDuration::from_millis(300),
        });
    }
    d.run_for(SimDuration::from_secs(6));
    let topology = fig4_topology();
    d.hmi(0).hmi.render("jhu", &topology)
}
