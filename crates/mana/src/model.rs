//! The anomaly model: per-feature Gaussian baselines with a combined
//! Mahalanobis-style score (diagonal covariance).
//!
//! The paper's argument for this class of model (§III-C): it needs no
//! protocol knowledge and no plaintext, and SCADA traffic — "short
//! constant system updates" — is so regular that a 12-hour capture
//! sufficed to train at the plant.

use crate::features::{FeatureVector, FEATURE_COUNT, FEATURE_NAMES};

/// Minimum standard deviation floor, so constant features (std = 0) do
/// not produce infinite scores on the first tiny fluctuation.
const STD_FLOOR: f64 = 0.5;

/// A trained per-feature Gaussian model.
#[derive(Clone, Debug)]
pub struct GaussianModel {
    mean: [f64; FEATURE_COUNT],
    std: [f64; FEATURE_COUNT],
    /// Number of training windows.
    pub trained_windows: usize,
    /// Alert threshold on the per-feature z-score.
    pub z_threshold: f64,
}

/// The score of one window against the model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Score {
    /// Per-feature |z| scores (indexes per [`FEATURE_NAMES`]).
    pub z: [f64; FEATURE_COUNT],
    /// Maximum per-feature |z|.
    pub max_z: f64,
    /// Index of the feature with the maximum |z|.
    pub top_feature: usize,
    /// Combined (root-mean-square) z across features.
    pub combined: f64,
}

impl Score {
    /// Name of the most anomalous feature.
    pub fn top_feature_name(&self) -> &'static str {
        FEATURE_NAMES[self.top_feature]
    }
}

impl GaussianModel {
    /// Fits the model on baseline windows.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty — training on nothing is a
    /// configuration error (the deployments trained on 24 h / 12 h
    /// captures).
    pub fn train(windows: &[FeatureVector]) -> Self {
        assert!(!windows.is_empty(), "cannot train on an empty baseline");
        let n = windows.len() as f64;
        let mut mean = [0.0; FEATURE_COUNT];
        for w in windows {
            for (m, v) in mean.iter_mut().zip(w.values.iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = [0.0; FEATURE_COUNT];
        for w in windows {
            for i in 0..FEATURE_COUNT {
                let d = w.values[i] - mean[i];
                var[i] += d * d;
            }
        }
        let mut std = [0.0; FEATURE_COUNT];
        for i in 0..FEATURE_COUNT {
            std[i] = (var[i] / n).sqrt().max(STD_FLOOR);
        }
        GaussianModel {
            mean,
            std,
            trained_windows: windows.len(),
            z_threshold: 6.0,
        }
    }

    /// Scores one window.
    pub fn score(&self, window: &FeatureVector) -> Score {
        let mut z = [0.0f64; FEATURE_COUNT];
        let mut max_z = 0.0f64;
        let mut top = 0;
        let mut sum_sq = 0.0f64;
        for (i, zi) in z.iter_mut().enumerate() {
            *zi = ((window.values[i] - self.mean[i]) / self.std[i]).abs();
            sum_sq += *zi * *zi;
            if *zi > max_z {
                max_z = *zi;
                top = i;
            }
        }
        Score {
            z,
            max_z,
            top_feature: top,
            combined: (sum_sq / FEATURE_COUNT as f64).sqrt(),
        }
    }

    /// Whether a score crosses the alert threshold.
    pub fn is_anomalous(&self, score: &Score) -> bool {
        score.max_z >= self.z_threshold
    }

    /// The learned mean of a feature (diagnostics).
    pub fn mean_of(&self, feature: usize) -> f64 {
        self.mean[feature]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;

    fn window(values: [f64; FEATURE_COUNT]) -> FeatureVector {
        FeatureVector {
            window_start: SimTime(0),
            values,
        }
    }

    /// A steady SCADA baseline: ~20 packets, ~2000 bytes, 4 sources.
    fn baseline(jitter: f64) -> Vec<FeatureVector> {
        (0..200)
            .map(|i| {
                let j = ((i % 5) as f64 - 2.0) * jitter;
                window([
                    20.0 + j,
                    2_000.0 + 10.0 * j,
                    4.0,
                    3.0,
                    0.0,
                    1.0,
                    1.0,
                    2.0,
                    100.0,
                    6.0,
                ])
            })
            .collect()
    }

    #[test]
    fn baseline_windows_score_low() {
        let model = GaussianModel::train(&baseline(1.0));
        for w in baseline(1.0) {
            let s = model.score(&w);
            assert!(!model.is_anomalous(&s), "baseline flagged: {s:?}");
        }
    }

    #[test]
    fn port_scan_window_flags_unique_ports() {
        let model = GaussianModel::train(&baseline(1.0));
        // A scan touches 200 distinct ports with many SYNs.
        let scan = window([
            220.0, 9_000.0, 5.0, 200.0, 200.0, 1.0, 1.0, 2.0, 42.0, 205.0,
        ]);
        let s = model.score(&scan);
        assert!(model.is_anomalous(&s));
        // The scan-specific features individually cross the threshold.
        assert!(
            s.z[3] >= model.z_threshold,
            "unique_dst_ports z = {}",
            s.z[3]
        );
        assert!(s.z[4] >= model.z_threshold, "syn_count z = {}", s.z[4]);
    }

    #[test]
    fn arp_storm_flags_arp_features() {
        let model = GaussianModel::train(&baseline(1.0));
        let storm = window([120.0, 5_000.0, 4.0, 3.0, 0.0, 2.0, 100.0, 102.0, 42.0, 6.0]);
        let s = model.score(&storm);
        assert!(model.is_anomalous(&s));
        assert!(
            s.z[6] >= model.z_threshold,
            "arp_reply_count z = {}",
            s.z[6]
        );
    }

    #[test]
    fn dos_burst_flags_volume() {
        let model = GaussianModel::train(&baseline(1.0));
        let burst = window([
            50_000.0,
            60_000_000.0,
            4.0,
            3.0,
            0.0,
            1.0,
            1.0,
            2.0,
            1_200.0,
            6.0,
        ]);
        let s = model.score(&burst);
        assert!(model.is_anomalous(&s));
        assert!(s.z[0] >= model.z_threshold && s.z[1] >= model.z_threshold);
    }

    #[test]
    fn constant_features_do_not_divide_by_zero() {
        // All-identical training data: stds hit the floor, scores finite.
        let model = GaussianModel::train(&baseline(0.0));
        let s = model.score(&window([
            20.0, 2_000.0, 4.0, 3.0, 0.0, 1.0, 1.0, 2.0, 100.0, 6.0,
        ]));
        assert!(s.max_z.is_finite());
        assert!(!model.is_anomalous(&s));
    }

    #[test]
    #[should_panic(expected = "empty baseline")]
    fn empty_training_panics() {
        let _ = GaussianModel::train(&[]);
    }
}
