//! Deterministic causal tracing: Dapper-style span trees over the
//! journal.
//!
//! A *trace* follows one root cause — a breaker flip detected by a PLC,
//! or a command issued by an HMI — through every component it touches.
//! Components stamp *spans* (stage + node + start/end) into the shared
//! [`crate::ObsHub`] journal using the existing record encoding, so
//! span trees fold into the run digest and inherit the per-seed
//! determinism guarantee: ids are allocated from hub-local counters and
//! timestamps come from the simulated clock.
//!
//! This module is the read side: it reassembles span trees from journal
//! records, extracts the causal chain of each trace, attributes
//! end-to-end latency to pipeline stages, and renders Chrome
//! trace-event JSON for Perfetto.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Event, TimedEvent};

/// Identifies one causal trace (one root command or breaker flip).
/// Allocated sequentially from 1 by the hub.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span. Unique across the whole run (not per trace),
/// allocated sequentially from 1 by the hub; 0 is reserved to encode
/// "no parent" in the journal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The active trace context: which span the current causal step is
/// inside. Carried as metadata on simulated packets (zero wire size)
/// and passed as the parent when a component opens a child span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceCtx {
    /// The trace the context belongs to.
    pub trace: TraceId,
    /// The span new children should attach under.
    pub span: SpanId,
}

/// Pipeline stage a span attributes latency to. The fixed `tag` feeds
/// the journal encoding; `name` feeds reports and Chrome export.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// PLC-side detection: breaker flip until the change is handed to a
    /// poll response (scan latency + poll interval).
    Detect,
    /// Proxy signs and multicasts the status update into external Spines.
    Publish,
    /// One overlay hop: an external Spines daemon received a routed
    /// message (instant).
    SpinesHop,
    /// Prime pre-ordering: update received until it lands in a proposal.
    PrimeQueue,
    /// Prime ordering round 1: pre-prepare accepted, prepare sent.
    PrimePrePrepare,
    /// Prime ordering round 2: prepare quorum reached, commit sent.
    PrimePrepare,
    /// Prime ordering round 3: commit quorum reached.
    PrimeCommit,
    /// The ordered update reached the SCADA application (instant).
    PrimeExecute,
    /// Receiver-side voting: f+1 matching copies crossed the threshold.
    Deliver,
    /// HMI display state updated (instant; terminal for status traces).
    Render,
    /// An HMI operator command was issued (root of command traces).
    Command,
    /// Modbus server executed a write request (instant).
    ModbusWrite,
    /// Breaker mechanically actuated (instant; terminal for command
    /// traces).
    Actuate,
    /// Commercial SCADA master observed a change in a poll response
    /// (instant).
    Poll,
}

impl Stage {
    /// Canonical encoding tag. Fixed forever — feeds the run digest.
    pub fn tag(self) -> u8 {
        match self {
            Stage::Detect => 0,
            Stage::Publish => 1,
            Stage::SpinesHop => 2,
            Stage::PrimeQueue => 3,
            Stage::PrimePrePrepare => 4,
            Stage::PrimePrepare => 5,
            Stage::PrimeCommit => 6,
            Stage::PrimeExecute => 7,
            Stage::Deliver => 8,
            Stage::Render => 9,
            Stage::Command => 10,
            Stage::ModbusWrite => 11,
            Stage::Actuate => 12,
            Stage::Poll => 13,
        }
    }

    /// Stable report / Chrome-export name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Detect => "detect",
            Stage::Publish => "publish",
            Stage::SpinesHop => "spines.hop",
            Stage::PrimeQueue => "prime.queue",
            Stage::PrimePrePrepare => "prime.preprepare",
            Stage::PrimePrepare => "prime.prepare",
            Stage::PrimeCommit => "prime.commit",
            Stage::PrimeExecute => "prime.execute",
            Stage::Deliver => "deliver",
            Stage::Render => "render",
            Stage::Command => "command",
            Stage::ModbusWrite => "modbus.write",
            Stage::Actuate => "actuate",
            Stage::Poll => "poll",
        }
    }

    /// Whether this stage ends a causal chain (a display rendered or a
    /// breaker actuated). Chain extraction anchors on the latest
    /// terminal span so stray late spans (duplicate overlay deliveries
    /// after the vote crossed) don't extend the critical path.
    pub fn is_terminal(self) -> bool {
        matches!(self, Stage::Render | Stage::Actuate)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One assembled span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// The span's id.
    pub id: SpanId,
    /// Parent span, `None` for the trace root.
    pub parent: Option<SpanId>,
    /// Stage the span attributes time to.
    pub stage: Stage,
    /// Component id that stamped it.
    pub node: u32,
    /// Start timestamp (simulated µs).
    pub start_us: u64,
    /// End timestamp. The assembler clamps so the span never outlives
    /// its parent and unclosed spans end at the journal's last record.
    pub end_us: u64,
    /// Whether an explicit `SpanEnd` was journaled.
    pub closed: bool,
}

impl Span {
    /// Span duration in simulated µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// All spans of one trace, in journal (= start time) order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The trace id.
    pub id: TraceId,
    /// The trace's spans, start-ordered.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The trace's root span (first parentless span), if any.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Looks a span up by id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// The causal chain, root first: the parent path of the
    /// latest-started terminal-stage span ([`Stage::is_terminal`]), or
    /// of the latest-started span overall when no terminal stage was
    /// reached. Latest-started ties break toward the higher span id.
    pub fn chain(&self) -> Vec<&Span> {
        let tip = self
            .spans
            .iter()
            .filter(|s| s.stage.is_terminal())
            .max_by_key(|s| (s.start_us, s.id))
            .or_else(|| self.spans.iter().max_by_key(|s| (s.start_us, s.id)));
        let mut path = Vec::new();
        let mut cur = tip;
        while let Some(span) = cur {
            path.push(span);
            cur = span.parent.and_then(|p| self.span(p));
        }
        path.reverse();
        path
    }

    /// End-to-end latency of the causal chain: terminal span end minus
    /// root span start. `None` for an empty trace.
    pub fn chain_total_us(&self) -> Option<u64> {
        let chain = self.chain();
        let first = chain.first()?;
        let last = chain.last()?;
        Some(last.end_us - first.start_us)
    }
}

/// Result of reassembling span trees from the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assembly {
    /// Traces in id order.
    pub traces: Vec<Trace>,
    /// `SpanEnd` records whose span was never started (should be zero;
    /// the well-formedness proptest pins this).
    pub orphan_ends: usize,
}

/// Reassembles span trees from journal records. Unclosed spans are
/// ended at the journal's last timestamp; every span's end is clamped
/// so children nest within their parents.
pub fn assemble(records: &[TimedEvent]) -> Assembly {
    let mut traces: BTreeMap<u64, Trace> = BTreeMap::new();
    // span id -> (trace id, index within that trace's span vector)
    let mut index: BTreeMap<u64, (u64, usize)> = BTreeMap::new();
    let mut orphan_ends = 0usize;
    let mut last_ts = 0u64;
    for rec in records {
        last_ts = last_ts.max(rec.at_us);
        match rec.event {
            Event::SpanStart {
                trace,
                span,
                parent,
                stage,
                node,
            } => {
                let t = traces.entry(trace.0).or_insert_with(|| Trace {
                    id: trace,
                    spans: Vec::new(),
                });
                index.insert(span.0, (trace.0, t.spans.len()));
                t.spans.push(Span {
                    id: span,
                    parent,
                    stage,
                    node,
                    start_us: rec.at_us,
                    end_us: rec.at_us, // provisional until SpanEnd / clamp
                    closed: false,
                });
            }
            Event::SpanEnd { span, .. } => match index.get(&span.0) {
                Some(&(trace, i)) => {
                    let s = &mut traces.get_mut(&trace).expect("indexed trace").spans[i];
                    s.end_us = rec.at_us.max(s.start_us);
                    s.closed = true;
                }
                None => orphan_ends += 1,
            },
            _ => {}
        }
    }
    for trace in traces.values_mut() {
        // First extend unclosed spans to the end of the journal, then
        // clamp children into their parents. Spans are start-ordered
        // and parents always start first, so one forward pass settles
        // every parent end before its children are clamped against it.
        for span in &mut trace.spans {
            if !span.closed {
                span.end_us = last_ts.max(span.start_us);
            }
        }
        for i in 0..trace.spans.len() {
            if let Some(parent) = trace.spans[i].parent {
                if let Some(p) = trace.spans.iter().position(|s| s.id == parent) {
                    let parent_end = trace.spans[p].end_us;
                    let s = &mut trace.spans[i];
                    s.end_us = s.end_us.min(parent_end).max(s.start_us);
                }
            }
        }
    }
    Assembly {
        traces: traces.into_values().collect(),
        orphan_ends,
    }
}

/// One row of a stage-attribution table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageRow {
    /// The attributed stage.
    pub stage: Stage,
    /// How many times the stage appears across all aggregated chains.
    pub count: u64,
    /// The stage's share of the median-total chain (µs).
    pub p50_us: u64,
    /// The stage's share of the p99-total chain (µs).
    pub p99_us: u64,
}

/// Per-stage latency attribution for one family of traces (same root
/// stage).
///
/// Quantile semantics: the `p50_us` column is the stage split of the
/// *chain whose end-to-end total is the median total* (upper median,
/// matching the experiment summaries), and likewise `p99_us` for the
/// p99-total chain. Each column therefore telescopes exactly — the
/// rows sum to `p50_total_us` / `p99_total_us` with zero rounding
/// error, unlike per-stage quantiles, which need not sum to any
/// observed end-to-end latency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Root stage of the aggregated traces.
    pub root: Stage,
    /// Number of complete chains aggregated.
    pub chains: u64,
    /// Stage rows in causal order (the p50 chain's stage sequence).
    pub rows: Vec<StageRow>,
    /// End-to-end total of the median chain; the `p50_us` column sums
    /// to exactly this.
    pub p50_total_us: u64,
    /// End-to-end total of the p99 chain.
    pub p99_total_us: u64,
}

impl StageBreakdown {
    /// Sum of the `p50_us` column (equals `p50_total_us` by
    /// construction; the E5 assertions pin it).
    pub fn p50_sum_us(&self) -> u64 {
        self.rows.iter().map(|r| r.p50_us).sum()
    }

    /// The summed p50 shares of every row whose stage satisfies `pred`.
    pub fn p50_share_us(&self, pred: impl Fn(Stage) -> bool) -> u64 {
        self.rows
            .iter()
            .filter(|r| pred(r.stage))
            .map(|r| r.p50_us)
            .sum()
    }
}

/// Per-chain stage split: each span's share is the gap to the next
/// chain span's start (the handoff latency), and the terminal span
/// contributes its own duration. The shares telescope to
/// [`Trace::chain_total_us`].
fn chain_shares<'t>(chain: &[&'t Span]) -> Vec<(&'t Span, u64)> {
    let mut shares = Vec::with_capacity(chain.len());
    for (i, span) in chain.iter().enumerate() {
        let share = match chain.get(i + 1) {
            Some(next) => next.start_us - span.start_us,
            None => span.duration_us(),
        };
        shares.push((*span, share));
    }
    shares
}

/// Builds the per-stage attribution over every chain rooted at `root`.
/// Returns `None` when no such trace exists. See [`StageBreakdown`]
/// for the quantile-chain semantics.
pub fn stage_breakdown(records: &[TimedEvent], root: Stage) -> Option<StageBreakdown> {
    let assembly = assemble(records);
    let mut chains: Vec<Vec<&Span>> = assembly
        .traces
        .iter()
        .filter(|t| t.root().map(|r| r.stage) == Some(root))
        .map(|t| t.chain())
        .filter(|c| !c.is_empty())
        .collect();
    if chains.is_empty() {
        return None;
    }
    let total = |c: &[&Span]| c[c.len() - 1].end_us - c[0].start_us;
    chains.sort_by_key(|c| total(c));
    let n = chains.len();
    // Upper-median index, matching `latency::summarize`'s median pick.
    let p50 = &chains[n / 2];
    let p99 = &chains[(n * 99 / 100).min(n - 1)];
    let p50_shares = chain_shares(p50);
    let p99_shares = chain_shares(p99);
    let mut rows = Vec::with_capacity(p50_shares.len());
    for (i, (span, share)) in p50_shares.iter().enumerate() {
        // The p99 chain usually has the identical stage sequence; fall
        // back to the first matching stage when topologies differ.
        let p99_us = p99_shares
            .get(i)
            .filter(|(s, _)| s.stage == span.stage)
            .or_else(|| p99_shares.iter().find(|(s, _)| s.stage == span.stage))
            .map_or(0, |(_, share)| *share);
        let count = chains
            .iter()
            .flat_map(|c| c.iter())
            .filter(|s| s.stage == span.stage)
            .count() as u64;
        rows.push(StageRow {
            stage: span.stage,
            count,
            p50_us: *share,
            p99_us,
        });
    }
    Some(StageBreakdown {
        root,
        chains: n as u64,
        rows,
        p50_total_us: total(p50),
        p99_total_us: total(p99),
    })
}

/// The critical-path tables of a run: one [`StageBreakdown`] per root
/// stage present in the journal, in stage-tag order. Empty when the
/// run journaled no spans (tracing off).
pub fn critical_paths(records: &[TimedEvent]) -> Vec<StageBreakdown> {
    let mut roots: Vec<Stage> = assemble(records)
        .traces
        .iter()
        .filter_map(|t| t.root().map(|r| r.stage))
        .collect();
    roots.sort_by_key(|s| s.tag());
    roots.dedup();
    roots
        .into_iter()
        .filter_map(|root| stage_breakdown(records, root))
        .collect()
}

/// Renders the journal's spans as Chrome trace-event JSON, loadable in
/// Perfetto or `chrome://tracing`: one `"X"` (complete) event per span
/// with `ts`/`dur` in µs, `pid` = trace id, `tid` = stamping node, plus
/// a `process_name` metadata record per trace. All names are static
/// ASCII, so no JSON escaping is required.
pub fn chrome_trace_json(records: &[TimedEvent]) -> String {
    use std::fmt::Write as _;
    let assembly = assemble(records);
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for trace in &assembly.traces {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"trace {}\"}}}}",
            trace.id, trace.id
        );
        for span in &trace.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"parent\":{}}}}}",
                span.stage,
                if span.closed { "span" } else { "span.unclosed" },
                span.start_us,
                span.duration_us(),
                trace.id,
                span.node,
                span.id,
                span.parent.map_or(0, |p| p.0),
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHub;

    fn spanning_hub() -> ObsHub {
        let hub = ObsHub::new();
        hub.set_tracing(true);
        hub
    }

    #[test]
    fn disabled_hub_allocates_nothing() {
        let hub = ObsHub::new();
        assert!(hub.start_root(Stage::Detect, 0).is_none());
        assert!(hub.start_span(None, Stage::Publish, 0).is_none());
        assert_eq!(hub.journal_len(), 0);
    }

    #[test]
    fn span_ids_are_sequential_and_journaled() {
        let hub = spanning_hub();
        let root = hub.start_root(Stage::Detect, 3).expect("tracing on");
        assert_eq!(root.trace, TraceId(1));
        assert_eq!(root.span, SpanId(1));
        hub.set_now_us(50);
        let child = hub
            .start_span(Some(root), Stage::Publish, 4)
            .expect("parent present");
        assert_eq!(child.trace, TraceId(1));
        assert_eq!(child.span, SpanId(2));
        hub.set_now_us(80);
        hub.end_span(Some(child));
        hub.end_span(Some(root));
        assert_eq!(hub.journal_len(), 4);
    }

    #[test]
    fn start_span_without_parent_is_a_noop() {
        let hub = spanning_hub();
        assert!(hub.start_span(None, Stage::Publish, 0).is_none());
        assert_eq!(hub.journal_len(), 0);
    }

    #[test]
    fn assembler_rebuilds_the_tree_and_closes_stragglers() {
        let hub = spanning_hub();
        let root = hub.start_root(Stage::Detect, 0).unwrap();
        hub.set_now_us(10);
        let child = hub.start_span(Some(root), Stage::Publish, 1).unwrap();
        hub.set_now_us(25);
        hub.end_span(Some(child));
        // Root is left unclosed; a later unrelated record moves time on.
        hub.set_now_us(40);
        hub.counter("tick").add(1);
        let _ = hub.start_root(Stage::Command, 2).unwrap();
        let assembly = assemble(&hub.journal_records());
        assert_eq!(assembly.orphan_ends, 0);
        assert_eq!(assembly.traces.len(), 2);
        let t = &assembly.traces[0];
        assert_eq!(t.id, TraceId(1));
        assert_eq!(t.spans.len(), 2);
        let r = t.root().expect("root");
        assert_eq!(r.stage, Stage::Detect);
        assert!(!r.closed);
        assert_eq!(r.end_us, 40, "unclosed span runs to the last record");
        let c = t.span(child.span).expect("child");
        assert!(c.closed);
        assert_eq!((c.start_us, c.end_us), (10, 25));
    }

    #[test]
    fn children_are_clamped_into_their_parents() {
        let hub = spanning_hub();
        let root = hub.start_root(Stage::Detect, 0).unwrap();
        hub.set_now_us(10);
        let child = hub.start_span(Some(root), Stage::Publish, 0).unwrap();
        hub.set_now_us(20);
        hub.end_span(Some(root)); // parent ends before child
        hub.set_now_us(90);
        hub.end_span(Some(child));
        let assembly = assemble(&hub.journal_records());
        let t = &assembly.traces[0];
        assert_eq!(t.span(child.span).unwrap().end_us, 20, "clamped to parent");
    }

    #[test]
    fn chain_follows_parents_and_prefers_terminal_spans() {
        let hub = spanning_hub();
        let root = hub.start_root(Stage::Detect, 0).unwrap();
        hub.set_now_us(10);
        let mid = hub.instant_span(Some(root), Stage::Deliver, 1).unwrap();
        hub.set_now_us(15);
        let _ = hub.instant_span(Some(mid), Stage::Render, 1).unwrap();
        // A stray non-terminal span starts later than the render.
        hub.set_now_us(22);
        let _ = hub.instant_span(Some(root), Stage::SpinesHop, 2).unwrap();
        hub.end_span(Some(root));
        let assembly = assemble(&hub.journal_records());
        let chain = assembly.traces[0].chain();
        let stages: Vec<Stage> = chain.iter().map(|s| s.stage).collect();
        assert_eq!(stages, [Stage::Detect, Stage::Deliver, Stage::Render]);
        assert_eq!(assembly.traces[0].chain_total_us(), Some(15));
    }

    #[test]
    fn breakdown_columns_telescope_to_their_chain_totals() {
        let hub = spanning_hub();
        // Three chains with totals 10, 30, 20 — median total 20.
        for (i, total) in [(0u64, 10u64), (1, 30), (2, 20)] {
            let base = i * 1_000;
            hub.set_now_us(base);
            let root = hub.start_root(Stage::Detect, 0).unwrap();
            hub.set_now_us(base + total / 2);
            let mid = hub.instant_span(Some(root), Stage::Deliver, 1).unwrap();
            hub.set_now_us(base + total);
            let _ = hub.instant_span(Some(mid), Stage::Render, 1).unwrap();
            hub.end_span(Some(root));
        }
        let b = stage_breakdown(&hub.journal_records(), Stage::Detect).expect("traces");
        assert_eq!(b.chains, 3);
        assert_eq!(b.p50_total_us, 20, "upper-median chain");
        assert_eq!(b.p99_total_us, 30);
        assert_eq!(b.p50_sum_us(), b.p50_total_us);
        assert_eq!(b.rows.iter().map(|r| r.p99_us).sum::<u64>(), b.p99_total_us);
        let stages: Vec<Stage> = b.rows.iter().map(|r| r.stage).collect();
        assert_eq!(stages, [Stage::Detect, Stage::Deliver, Stage::Render]);
        assert!(b.rows.iter().all(|r| r.count == 3));
    }

    #[test]
    fn chrome_export_is_valid_and_complete() {
        let hub = spanning_hub();
        let root = hub.start_root(Stage::Command, 7).unwrap();
        hub.set_now_us(12);
        let w = hub.instant_span(Some(root), Stage::ModbusWrite, 8).unwrap();
        hub.set_now_us(30);
        let _ = hub.instant_span(Some(w), Stage::Actuate, 8).unwrap();
        hub.end_span(Some(root));
        let json = chrome_trace_json(&hub.journal_records());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 1);
        assert!(json.contains("\"name\":\"modbus.write\""));
        assert!(json.contains("\"ts\":12"));
        // Balanced braces — cheap structural validity check on top of
        // the full parse done by the CLI integration test.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn stage_tags_are_unique() {
        let all = [
            Stage::Detect,
            Stage::Publish,
            Stage::SpinesHop,
            Stage::PrimeQueue,
            Stage::PrimePrePrepare,
            Stage::PrimePrepare,
            Stage::PrimeCommit,
            Stage::PrimeExecute,
            Stage::Deliver,
            Stage::Render,
            Stage::Command,
            Stage::ModbusWrite,
            Stage::Actuate,
            Stage::Poll,
        ];
        let mut tags: Vec<u8> = all.iter().map(|s| s.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), all.len());
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
