//! Cross-crate integration tests: every experiment reproduces the
//! paper's qualitative outcome (see EXPERIMENTS.md for the full mapping).

use bench::mana_experiment::e7_mana_detection;
use bench::plant_experiments::{e4_plant_deployment, e5_reaction_time};
use bench::recovery_experiments::{e6_ground_truth, e8_recovery_ablation, e9_diversity_ablation};
use bench::redteam_experiments::{
    e1_commercial_attacks, e2_spire_network_attacks, e3_replica_excursion,
};
use redteam::report::AttackOutcome;

#[test]
fn e1_commercial_system_falls() {
    let report = e1_commercial_attacks(101);
    // Every §IV-B attack on the commercial system succeeded.
    assert!(report.rows.len() >= 4, "all four attack stages ran");
    for row in &report.rows {
        assert_eq!(
            row.outcome,
            AttackOutcome::Succeeded,
            "commercial system resisted '{}' — it must not",
            row.attack
        );
    }
    assert!(!report.target_held("commercial"));
}

#[test]
fn e2_spire_withstands_network_attacks() {
    let result = e2_spire_network_attacks(202);
    assert!(
        result.report.target_held("spire"),
        "{}",
        result.report.render()
    );
    // "They had no visibility into the system": the scan saw nothing.
    let scan = &result.report.rows[0];
    assert_eq!(scan.outcome, AttackOutcome::NoVisibility);
    // Poisoning bounced off static ARP tables.
    assert!(
        result.arp_rejections > 0,
        "poison attempts were rejected, not ignored"
    );
    // The breaker cycle never stopped.
    assert!(result.frames_after > result.frames_before);
}

#[test]
fn e3_excursion_never_disrupts_service() {
    let report = e3_replica_excursion(303);
    assert!(report.spire_survived(), "{report:#?}");
    assert_eq!(report.stages.len(), 5);
    assert!(report.stages[1].evidence.contains("auth failures"));
    assert!(report.stages[2].evidence.contains("dirtycow failed"));
}

#[test]
fn e4_compressed_day_of_plant_operation() {
    // One compressed day with proactive recoveries; full E4 runs in the bench.
    let run = e4_plant_deployment(404, 1, 30);
    assert!(
        run.recoveries >= 2,
        "proactive recoveries happened: {run:?}"
    );
    assert!(run.min_executed > 0, "all replicas executed updates");
    assert!(run.hmi_frames > 0, "displays stayed live");
    assert!(run.replicas_consistent, "replica state digests agree");
}

#[test]
fn e5_spire_meets_timing_and_beats_commercial() {
    let r = e5_reaction_time(505, 8);
    assert_eq!(r.spire.missed, 0, "no missed display updates");
    assert!(
        r.spire_meets_requirement(),
        "spire median {} > requirement",
        r.spire.median
    );
    assert!(
        r.spire_faster(),
        "spire {} vs commercial {}",
        r.spire.median,
        r.commercial.median
    );
}

#[test]
fn e5_reaction_histograms_pin_the_paper_outcome() {
    // Same verdicts, but asserted from the recorded metrics registry
    // instead of the sample vectors: the histograms are the system of
    // record for latency regressions.
    let r = e5_reaction_time(505, 8);
    let spire = r
        .obs
        .histogram("e5.spire.reaction_us")
        .expect("spire histogram recorded");
    let commercial = r
        .obs
        .histogram("e5.commercial.reaction_us")
        .expect("commercial histogram recorded");
    assert_eq!(spire.count, 8, "every flip recorded");
    assert_eq!(commercial.count, 8);
    // §V: Spire's reaction time meets the plant's timing requirement
    // (median <= 200 ms) and beats the commercial system's median. The
    // histogram p50 is a bucket upper edge, so it can only over-report —
    // passing here is strictly stronger than the sample-vector check.
    assert!(
        spire.p50 <= 200_000,
        "spire p50 {} us over the 200 ms requirement",
        spire.p50
    );
    assert!(
        spire.p50 <= commercial.p50,
        "spire p50 {} us vs commercial p50 {} us",
        spire.p50,
        commercial.p50
    );
    assert!(
        spire.p50 <= spire.p99 && spire.p99 <= spire.max,
        "quantiles ordered"
    );
}

#[test]
fn e5_prime_ordering_dominates_the_reaction_path() {
    // The span-level attribution pins WHERE Spire's reaction time goes:
    // Prime's ordering pipeline (queueing for the next pre-prepare plus
    // the three-phase agreement), not the Spines overlay and not the
    // field devices, is the dominant stage — the cost of intrusion
    // tolerance is the ordering latency, exactly as the paper argues.
    let r = e5_reaction_time(505, 8);
    let spire = r.spire_stages.as_ref().expect("spire path traced");
    assert_eq!(spire.chains, 8, "every flip produced a complete chain");
    let prime = spire.p50_share_us(|s| {
        matches!(
            s,
            obs::Stage::PrimeQueue
                | obs::Stage::PrimePrePrepare
                | obs::Stage::PrimePrepare
                | obs::Stage::PrimeCommit
                | obs::Stage::PrimeExecute
        )
    });
    let detect = spire.p50_share_us(|s| s == obs::Stage::Detect);
    let network = spire.p50_share_us(|s| {
        matches!(
            s,
            obs::Stage::Publish | obs::Stage::SpinesHop | obs::Stage::Deliver
        )
    });
    assert!(
        prime > detect,
        "ordering {prime} us dominates detection {detect} us"
    );
    assert!(
        prime > 10 * network.max(1),
        "ordering {prime} us dwarfs network transit {network} us"
    );
    // The shares are an exact decomposition of the recorded median.
    assert_eq!(spire.p50_sum_us(), spire.p50_total_us);
    let p50 = r.spire.median.as_micros() as u64;
    assert!(
        spire.p50_total_us.abs_diff(p50) <= 1,
        "chain total {} us vs recorded median {} us",
        spire.p50_total_us,
        p50
    );
    // The commercial path has no ordering stage at all: its latency is
    // pure detection (the slow serial poll loop).
    let comm = r
        .commercial_stages
        .as_ref()
        .expect("commercial path traced");
    let comm_detect = comm.p50_share_us(|s| s == obs::Stage::Detect);
    assert!(
        comm_detect * 2 > comm.p50_total_us,
        "commercial latency is detection-bound: {comm_detect} of {}",
        comm.p50_total_us
    );
}

#[test]
fn e6_ground_truth_recovery_after_breach() {
    let run = e6_ground_truth(606);
    assert!(!run.replica_recovery_possible, "1 intact replica < f+1 = 2");
    assert!(
        run.field_rebuild_correct,
        "state rebuilt from field devices matches reality"
    );
    assert!(run.historian_records_lost > 0, "history is gone");
    assert!(
        run.historian_records_recovered < run.historian_records_lost,
        "only the present snapshot comes back"
    );
}

#[test]
fn e7_mana_detects_the_red_team() {
    let run = e7_mana_detection(707);
    assert!(run.training_windows > 50, "baseline trained");
    assert!(
        run.clean_flag_rate < 0.05,
        "clean traffic mostly unflagged: {}",
        run.clean_flag_rate
    );
    assert!(run.detected_scan, "port scan detected");
    assert!(run.detected_arp, "arp poisoning detected");
    assert!(run.detected_flood, "dos flood detected");
}

#[test]
fn e8_six_replicas_survive_recovery_plus_intrusion_four_do_not() {
    let arms = e8_recovery_ablation(808);
    assert_eq!(arms.len(), 2);
    let four = &arms[0];
    let six = &arms[1];
    assert_eq!(four.n, 4);
    assert_eq!(six.n, 6);
    assert!(
        !four.stayed_live,
        "3f+1 must stall under intrusion + recovery: {four:?}"
    );
    assert!(six.stayed_live, "3f+2k+1 must stay live: {six:?}");
}

#[test]
fn e9_defense_ordering_holds() {
    let rows = e9_diversity_ablation(909, 5);
    // For the 8-hour attacker: identical breaches immediately; diversity
    // delays; diversity + recovery survives.
    let find = |defense: &str, hours: f64| {
        rows.iter()
            .find(|r| r.defense == defense && r.exploit_hours == hours)
            .expect("row exists")
            .clone()
    };
    let ident = find("identical replicas", 8.0);
    let divers = find("diversity only", 8.0);
    let full = find("diversity + recovery (30 min cycle)", 8.0);
    assert_eq!(ident.breach_fraction, 1.0);
    assert_eq!(divers.breach_fraction, 1.0);
    assert!(full.breach_fraction < 0.5, "recovery holds: {full:?}");
    let i = ident.median_breach_hours.expect("identical breaches");
    let d = divers.median_breach_hours.expect("diversity-only breaches");
    assert!(d > i, "diversity bought time: {d} vs {i}");
}

#[test]
fn e11_latency_flat_then_knee() {
    // The paper's qualitative performance claim: bounded-delay ordering
    // keeps latency flat as offered load grows, until the fabric
    // saturates and queueing takes over (the knee).
    for seed in [42, 1111] {
        let run = bench::e11_saturation(seed, &bench::e11_default_rates());
        assert!(
            run.is_flat_then_knee(),
            "seed {seed}:\n{}",
            bench::saturation::render_saturation(&run)
        );
    }
}

#[test]
fn e7b_roc_curves_separate_attacks_from_baseline() {
    let run = bench::mana_experiment::e7_roc(717);
    assert!(run.windows > 30, "10 s of 250 ms windows: {run:?}");
    assert!(run.attack_windows >= 3, "attack intervals labeled: {run:?}");
    assert!(run.auc_gaussian > 0.9, "gaussian AUC {}", run.auc_gaussian);
    assert!(run.auc_kmeans > 0.9, "k-means AUC {}", run.auc_kmeans);
}
