//! The §V end-to-end reaction-time harness.
//!
//! "The device periodically flipped a breaker and used two sensors to
//! detect when the HMI screens of the two systems updated to reflect the
//! change." Here the device physically operates a breaker inside the PLC
//! ([`plc::PlcEmulator::force_breaker`]) and the sensor reads the HMI's
//! black/white box transitions; the reaction time is the difference.

use simnet::time::{SimDuration, SimTime};

use crate::deploy::Deployment;

/// One measured flip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// When the breaker was physically operated.
    pub flipped_at: SimTime,
    /// When the HMI box changed, if it did before the next flip.
    pub displayed_at: Option<SimTime>,
}

impl Sample {
    /// Reaction time, if the display updated.
    pub fn reaction(&self) -> Option<SimDuration> {
        self.displayed_at.map(|d| d.since(self.flipped_at))
    }
}

/// Distribution summary of reaction times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Flips measured.
    pub samples: usize,
    /// Flips that never reached the display (missed updates).
    pub missed: usize,
    /// Minimum reaction.
    pub min: SimDuration,
    /// Median reaction.
    pub median: SimDuration,
    /// Maximum reaction.
    pub max: SimDuration,
    /// Mean reaction.
    pub mean: SimDuration,
}

/// Summarizes samples.
///
/// # Panics
///
/// Panics if no sample completed (nothing to summarize).
pub fn summarize(samples: &[Sample]) -> LatencySummary {
    let mut reactions: Vec<SimDuration> = samples.iter().filter_map(|s| s.reaction()).collect();
    assert!(!reactions.is_empty(), "no completed samples to summarize");
    reactions.sort_unstable();
    let sum: u64 = reactions.iter().map(|d| d.as_micros()).sum();
    LatencySummary {
        samples: samples.len(),
        missed: samples.len() - reactions.len(),
        min: reactions[0],
        median: reactions[reactions.len() / 2],
        max: *reactions.last().expect("nonempty"),
        mean: SimDuration::from_micros(sum / reactions.len() as u64),
    }
}

/// Runs the measurement against a Spire deployment: flips `breaker` of
/// proxy `p`'s PLC `flips` times, `period` apart, watching HMI `h`'s
/// sensor box.
pub fn measure_spire(
    d: &mut Deployment,
    proxy: u32,
    breaker: u16,
    hmi: u32,
    flips: usize,
    period: SimDuration,
) -> Vec<Sample> {
    let scenario_tag = d.proxy(proxy).scenario().tag();
    d.hmi_mut(hmi).hmi.set_sensor_breaker(scenario_tag, breaker);
    let mut samples = Vec::new();
    let mut state = d.plc(proxy).positions()[breaker as usize];
    for i in 0..flips {
        // Deterministic phase jitter: without it every flip lands at the
        // same offset inside the proxy's poll cycle and all samples
        // measure the identical path.
        d.run_for(SimDuration::from_micros((i as u64 * 7_919) % 20_000));
        state = !state;
        let flipped_at = d.now();
        let seen_transitions = d.hmi(hmi).hmi.box_transitions.len();
        d.plc_mut(proxy).force_breaker(breaker, state, flipped_at);
        d.run_for(period);
        let transitions = &d.hmi(hmi).hmi.box_transitions;
        let displayed_at = transitions
            .get(seen_transitions..)
            .and_then(|new| new.iter().find(|&&(_, white)| white == state))
            .map(|&(t, _)| t);
        let sample = Sample {
            flipped_at,
            displayed_at,
        };
        if let Some(reaction) = sample.reaction() {
            d.obs
                .histogram("e5.spire.reaction_us")
                .record(reaction.as_micros());
        }
        samples.push(sample);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_computes_distribution() {
        let samples = vec![
            Sample {
                flipped_at: SimTime(0),
                displayed_at: Some(SimTime(100_000)),
            },
            Sample {
                flipped_at: SimTime(1_000_000),
                displayed_at: Some(SimTime(1_300_000)),
            },
            Sample {
                flipped_at: SimTime(2_000_000),
                displayed_at: Some(SimTime(2_200_000)),
            },
            Sample {
                flipped_at: SimTime(3_000_000),
                displayed_at: None,
            },
        ];
        let s = summarize(&samples);
        assert_eq!(s.samples, 4);
        assert_eq!(s.missed, 1);
        assert_eq!(s.min, SimDuration::from_millis(100));
        assert_eq!(s.median, SimDuration::from_millis(200));
        assert_eq!(s.max, SimDuration::from_millis(300));
        assert_eq!(s.mean, SimDuration::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "no completed samples")]
    fn summarize_empty_panics() {
        let samples = vec![Sample {
            flipped_at: SimTime(0),
            displayed_at: None,
        }];
        let _ = summarize(&samples);
    }
}
