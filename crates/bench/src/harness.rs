//! Determinism fingerprints and the wall-clock bench harness.
//!
//! Every experiment is deterministic from its seed, and most of them run
//! on top of the event journal; [`RunMeta`] captures the journal digest
//! plus the simulator's event count for each deployment an experiment
//! builds. [`experiment_fingerprint`] folds those captures (plus the
//! rendered result tables) into a single hex digest per experiment, which
//! `tests/golden_digests.rs` pins at [`GOLDEN_SEED`] so performance work
//! cannot silently change observable behavior.
//!
//! [`run_bench`] times every experiment wall-clock and reports
//! sim-events/sec, seeding the `BENCH_*.json` trajectory that the
//! ROADMAP's "as fast as the hardware allows" north star asks for.

use std::fmt::Write as _;
use std::time::Instant;

use itcrypto::sha256::sha256;
use simnet::sim::Simulation;

use crate::chaos_experiment::{e12_chaos_soak, render_chaos};
use crate::mana_experiment::{e7_mana_detection, e7_roc, render_mana, render_roc};
use crate::plant_experiments::{e4_plant_deployment, e5_reaction_time, render_reaction};
use crate::recovery_experiments::{
    e6_ground_truth, e8_recovery_ablation, e9_diversity_ablation, render_diversity,
};
use crate::redteam_experiments::{
    e10_hardening_ablation_meta, e1_commercial_attacks_meta, e2_spire_network_attacks,
    e3_replica_excursion_meta, render_ablation,
};
use crate::response_experiment::{e16_campaign, render_campaign, Shape};
use crate::saturation::{
    e11_batched_rates, e11_default_rates, e11_saturation, e11_saturation_with, render_saturation,
    SaturationOpts, SaturationRun,
};
use crate::site_experiment::{e13_leg_by_id, render_leg};

/// The seed at which the golden digests in `tests/golden_digests.rs` are
/// pinned.
pub const GOLDEN_SEED: u64 = 42;

/// Determinism capture for one deployment (or lab) an experiment built:
/// the event-journal digest plus the simulator's processed-event count.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// Which deployment within the experiment this captures.
    pub label: String,
    /// Hex journal digest (`ObsHub::journal_digest`) at the end of the run.
    pub journal_digest: String,
    /// Total simulator events processed by the run.
    pub sim_events: u64,
}

impl RunMeta {
    /// Captures the fingerprint inputs of a finished run.
    pub fn capture(label: &str, obs: &obs::ObsHub, sim: &Simulation) -> Self {
        Self {
            label: label.to_string(),
            journal_digest: obs.journal_digest().to_hex(),
            sim_events: sim.events_processed(),
        }
    }
}

fn meta_lines(out: &mut String, metas: &[RunMeta]) {
    for m in metas {
        let _ = writeln!(out, "{} {} {}", m.label, m.journal_digest, m.sim_events);
    }
}

/// Runs experiment `id` ("e1".."e10", "e7b", "e11b", "e12",
/// "e13a".."e13c", "e16a"/"e16b") at `seed` — at a reduced size
/// where the full run would be slow — and folds its journal digests,
/// event counts, and rendered result into one hex digest.
///
/// Any behavioral drift (different message bytes, different event order,
/// different verdicts) changes the digest; pure performance work does not.
///
/// # Panics
/// Panics on an unknown experiment id.
pub fn experiment_fingerprint(id: &str, seed: u64) -> String {
    let mut text = format!("{id} seed={seed}\n");
    match id {
        "e1" => {
            let (report, metas) = e1_commercial_attacks_meta(seed);
            meta_lines(&mut text, &metas);
            text.push_str(&report.render());
        }
        "e2" => {
            let r = e2_spire_network_attacks(seed);
            meta_lines(&mut text, std::slice::from_ref(&r.meta));
            text.push_str(&r.report.render());
            let _ = writeln!(
                text,
                "frames {} -> {}  arp_rejections {}  spines_auth_failures {}",
                r.frames_before, r.frames_after, r.arp_rejections, r.spines_auth_failures
            );
        }
        "e3" => {
            let (report, meta) = e3_replica_excursion_meta(seed);
            meta_lines(&mut text, std::slice::from_ref(&meta));
            let _ = writeln!(text, "{report:#?}");
        }
        "e4" => {
            let run = e4_plant_deployment(seed, 1, 6);
            meta_lines(&mut text, std::slice::from_ref(&run.meta));
            let _ = writeln!(
                text,
                "recoveries {} min_executed {} hmi_frames {} view_changes {} gap {} consistent {}",
                run.recoveries,
                run.min_executed,
                run.hmi_frames,
                run.view_changes,
                run.longest_display_gap,
                run.replicas_consistent
            );
        }
        "e5" => {
            let r = e5_reaction_time(seed, 4);
            meta_lines(&mut text, &r.meta);
            text.push_str(&render_reaction(&r));
        }
        "e6" => {
            let run = e6_ground_truth(seed);
            meta_lines(&mut text, std::slice::from_ref(&run.meta));
            let _ = writeln!(text, "{run:#?}");
        }
        "e7" => {
            let run = e7_mana_detection(seed);
            meta_lines(&mut text, std::slice::from_ref(&run.meta));
            text.push_str(&render_mana(&run));
        }
        "e7b" => {
            let run = e7_roc(seed);
            meta_lines(&mut text, std::slice::from_ref(&run.meta));
            text.push_str(&render_roc(&run));
        }
        "e8" => {
            // Cluster-based: no simnet journal; the arm table is the record.
            let arms = e8_recovery_ablation(seed);
            let _ = writeln!(text, "{arms:#?}");
        }
        "e9" => {
            // Pure computation; the rendered table is the record.
            text.push_str(&render_diversity(&e9_diversity_ablation(seed, 5)));
        }
        "e10" => {
            let (rows, metas) = e10_hardening_ablation_meta(seed);
            meta_lines(&mut text, &metas);
            text.push_str(&render_ablation(&rows));
        }
        "e11b" => {
            // Batched E11 at a reduced ramp (Cluster-based: no simnet
            // journal; the rendered ramp is the record). 100/s closes
            // batches as singletons, 800/s forms multi-member batches and
            // keeps the pipeline window occupied, so both dissemination
            // paths land in the fingerprint.
            let run = e11_saturation_with(seed, &[100, 800], SaturationOpts::batched());
            text.push_str(&render_saturation(&run));
        }
        "e12" => {
            let run = e12_chaos_soak(seed, 1, 12);
            meta_lines(&mut text, std::slice::from_ref(&run.meta));
            text.push_str(&render_chaos(&run));
        }
        "e13a" | "e13b" | "e13c" => {
            let leg = e13_leg_by_id(id, seed);
            meta_lines(&mut text, std::slice::from_ref(&leg.meta));
            text.push_str(&render_leg(&leg));
        }
        "e16a" | "e16b" => {
            let shape = if id == "e16a" {
                Shape::ImplantFlood
            } else {
                Shape::DoubleCompromise
            };
            let run = e16_campaign(seed, shape, 1);
            meta_lines(&mut text, std::slice::from_ref(&run.periodic.meta));
            meta_lines(&mut text, std::slice::from_ref(&run.feedback.meta));
            text.push_str(&render_campaign(&run));
        }
        other => panic!("unknown experiment id: {other}"),
    }
    sha256(text.as_bytes()).to_hex()
}

/// The experiment ids covered by [`experiment_fingerprint`], in run order.
pub const FINGERPRINTED: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e7b", "e8", "e9", "e10", "e11b", "e12", "e13a",
    "e13b", "e13c", "e16a", "e16b",
];

/// One timed experiment in a bench run.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Experiment id.
    pub name: String,
    /// Wall-clock milliseconds for the full experiment.
    pub wall_ms: f64,
    /// Simulator events processed (absent for Cluster-only / pure runs).
    pub sim_events: Option<u64>,
    /// `sim_events / wall seconds` — the engine-throughput trajectory.
    pub events_per_sec: Option<f64>,
}

/// A full `spire-sim bench` run: every experiment timed at one seed.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// The seed every experiment ran at.
    pub seed: u64,
    /// Per-experiment timings, in run order.
    pub entries: Vec<BenchEntry>,
    /// E4 re-timed under the parallel scheduler, one point per thread
    /// count (see [`e4_scaling_curve`]).
    pub scaling: Vec<ScalingPoint>,
    /// E11 knee curves, unbatched reference first, batched second —
    /// the before/after record of the ordering-knee optimization.
    pub e11_knees: Vec<KneeCurve>,
}

/// One E11 latency point carried into the bench report.
#[derive(Clone, Debug)]
pub struct KneePoint {
    /// Offered client updates per second.
    pub offered_per_s: u64,
    /// Achieved ordering throughput.
    pub ordered_per_s: f64,
    /// Median submit→execute latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

/// A compact E11 ramp summary for one protocol variant.
#[derive(Clone, Debug)]
pub struct KneeCurve {
    /// `Config::batch_max` the ramp ran with (0 = legacy).
    pub batch_max: u32,
    /// `Config::pipeline` the ramp ran with (1 = serialized).
    pub pipeline: u32,
    /// Offered rate of the knee step, if the ramp found one.
    pub knee_offered_per_s: Option<u64>,
    /// One point per ramp step.
    pub points: Vec<KneePoint>,
}

impl KneeCurve {
    /// Collapses a saturation run into the bench-report form.
    pub fn from_run(run: &SaturationRun) -> Self {
        KneeCurve {
            batch_max: run.opts.batch_max,
            pipeline: run.opts.pipeline,
            knee_offered_per_s: run.knee_index().map(|k| run.steps[k].offered_per_s),
            points: run
                .steps
                .iter()
                .map(|s| KneePoint {
                    offered_per_s: s.offered_per_s,
                    ordered_per_s: s.ordered_per_s,
                    p50_us: s.p50_us,
                    p99_us: s.p99_us,
                })
                .collect(),
        }
    }
}

/// One point of the E4 thread-scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Simulator worker threads.
    pub threads: usize,
    /// Wall-clock milliseconds for the E4 run.
    pub wall_ms: f64,
    /// Simulator events processed (identical at every thread count — the
    /// parallel scheduler is digest-equivalent, not approximately so).
    pub sim_events: u64,
    /// Throughput in simulator events per wall-clock second.
    pub events_per_sec: f64,
    /// Speedup relative to the curve's single-threaded point.
    pub speedup: f64,
}

/// Times E4 (tier-1 size: one compressed day of 30 s) once per thread
/// count and returns the scaling curve. Asserts that every run produced
/// the identical journal digest and event count — the bench refuses to
/// report a "speedup" that bought its speed by changing behavior.
///
/// # Panics
/// Panics if `thread_counts` is empty or any run's digest diverges.
pub fn e4_scaling_curve(seed: u64, thread_counts: &[usize]) -> Vec<ScalingPoint> {
    let saved = simnet::sim::default_threads();
    let mut curve: Vec<ScalingPoint> = Vec::new();
    let mut reference: Option<(String, u64)> = None;
    let mut base_ms = f64::NAN;
    for &threads in thread_counts {
        simnet::sim::set_default_threads(threads);
        let (run, ms) = timed(|| e4_plant_deployment(seed, 1, 30));
        let (digest, events) = (run.meta.journal_digest, run.meta.sim_events);
        match &reference {
            None => {
                base_ms = ms;
                reference = Some((digest, events));
            }
            Some((d, e)) => {
                assert_eq!(d, &digest, "e4 digest diverged at {threads} threads");
                assert_eq!(*e, events, "e4 event count diverged at {threads} threads");
            }
        }
        curve.push(ScalingPoint {
            threads,
            wall_ms: ms,
            sim_events: events,
            events_per_sec: events as f64 / (ms / 1000.0),
            speedup: base_ms / ms,
        });
    }
    simnet::sim::set_default_threads(saved);
    curve
}

fn entry(name: &str, wall_ms: f64, sim_events: Option<u64>) -> BenchEntry {
    BenchEntry {
        name: name.to_string(),
        wall_ms,
        sim_events,
        events_per_sec: sim_events.map(|e| e as f64 / (wall_ms / 1000.0)),
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

/// Times e1–e11 wall-clock at `seed` (e4 at its tier-1 size, e5 at 8
/// flips, e9 at 20 trials, e11 over the default rate ramp, e11b — the
/// batched variant — over the extended ramp) and reports sim-events/sec
/// wherever a simulator ran. The two E11 runs are kept as before/after
/// knee curves in [`BenchReport::e11_knees`].
pub fn run_bench(seed: u64) -> BenchReport {
    let mut entries = Vec::new();

    let ((_, metas), ms) = timed(|| e1_commercial_attacks_meta(seed));
    entries.push(entry(
        "e1",
        ms,
        Some(metas.iter().map(|m| m.sim_events).sum()),
    ));

    let (r, ms) = timed(|| e2_spire_network_attacks(seed));
    entries.push(entry("e2", ms, Some(r.meta.sim_events)));

    let ((_, meta), ms) = timed(|| e3_replica_excursion_meta(seed));
    entries.push(entry("e3", ms, Some(meta.sim_events)));

    let (run, ms) = timed(|| e4_plant_deployment(seed, 1, 30));
    entries.push(entry("e4", ms, Some(run.meta.sim_events)));

    let (r, ms) = timed(|| e5_reaction_time(seed, 8));
    entries.push(entry(
        "e5",
        ms,
        Some(r.meta.iter().map(|m| m.sim_events).sum()),
    ));

    let (run, ms) = timed(|| e6_ground_truth(seed));
    entries.push(entry("e6", ms, Some(run.meta.sim_events)));

    let (run, ms) = timed(|| e7_mana_detection(seed));
    entries.push(entry("e7", ms, Some(run.meta.sim_events)));

    let (run, ms) = timed(|| e7_roc(seed));
    entries.push(entry("e7b", ms, Some(run.meta.sim_events)));

    let (_, ms) = timed(|| e8_recovery_ablation(seed));
    entries.push(entry("e8", ms, None));

    let (_, ms) = timed(|| e9_diversity_ablation(seed, 20));
    entries.push(entry("e9", ms, None));

    let ((_, metas), ms) = timed(|| e10_hardening_ablation_meta(seed));
    entries.push(entry(
        "e10",
        ms,
        Some(metas.iter().map(|m| m.sim_events).sum()),
    ));

    let (run_legacy, ms) = timed(|| e11_saturation(seed, &e11_default_rates()));
    entries.push(entry("e11", ms, None));

    let (run_batched, ms) =
        timed(|| e11_saturation_with(seed, &e11_batched_rates(), SaturationOpts::batched()));
    entries.push(entry("e11b", ms, None));

    let scaling = e4_scaling_curve(seed, &[1, 2, 4, 8]);

    BenchReport {
        seed,
        entries,
        scaling,
        e11_knees: vec![
            KneeCurve::from_run(&run_legacy),
            KneeCurve::from_run(&run_batched),
        ],
    }
}

/// Renders the bench report as a table.
pub fn render_bench(r: &BenchReport) -> String {
    let mut out = format!("bench at seed {}\n", r.seed);
    let _ = writeln!(
        out,
        "{:<6} {:>10} {:>12} {:>14}",
        "exp", "wall_ms", "sim_events", "events/sec"
    );
    let _ = writeln!(out, "{}", "-".repeat(46));
    for e in &r.entries {
        let _ = writeln!(
            out,
            "{:<6} {:>10.1} {:>12} {:>14}",
            e.name,
            e.wall_ms,
            e.sim_events.map_or("-".into(), |v| v.to_string()),
            e.events_per_sec.map_or("-".into(), |v| format!("{v:.0}")),
        );
    }
    let total: f64 = r.entries.iter().map(|e| e.wall_ms).sum();
    let _ = writeln!(out, "total  {total:>10.1}");
    if !r.scaling.is_empty() {
        let _ = writeln!(out, "\ne4 thread scaling (digest-identical at every point)");
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>14} {:>8}",
            "threads", "wall_ms", "events/sec", "speedup"
        );
        let _ = writeln!(out, "{}", "-".repeat(44));
        for p in &r.scaling {
            let _ = writeln!(
                out,
                "{:<8} {:>10.1} {:>14.0} {:>7.2}x",
                p.threads, p.wall_ms, p.events_per_sec, p.speedup
            );
        }
    }
    if !r.e11_knees.is_empty() {
        let _ = writeln!(out, "\ne11 ordering knee (before/after batching)");
        let _ = writeln!(
            out,
            "{:<20} {:>14} {:>12}",
            "variant", "knee_offered/s", "ramp_top/s"
        );
        let _ = writeln!(out, "{}", "-".repeat(48));
        for c in &r.e11_knees {
            let _ = writeln!(
                out,
                "{:<20} {:>14} {:>12}",
                format!("batch={} pipe={}", c.batch_max, c.pipeline),
                c.knee_offered_per_s
                    .map_or("none".into(), |v| v.to_string()),
                c.points.last().map_or(0, |p| p.offered_per_s),
            );
        }
        if let (Some(Some(before)), Some(Some(after))) = (
            r.e11_knees.first().map(|c| c.knee_offered_per_s),
            r.e11_knees.last().map(|c| c.knee_offered_per_s),
        ) {
            let _ = writeln!(
                out,
                "knee moved {:.1}x ({} -> {} updates/s)",
                after as f64 / before as f64,
                before,
                after
            );
        }
    }
    out
}

/// Serializes the bench report as JSON (`spire-sim bench --json FILE`).
///
/// Hand-rolled: the workspace deliberately has no serde dependency, and
/// the schema is a handful of fixed keys. Schema v3 adds `e11_knees`:
/// the before/after ordering-knee curves (unbatched reference, then
/// batched).
pub fn bench_json(r: &BenchReport) -> String {
    let mut out = String::from("{\n  \"schema\": \"spire-bench-v3\",\n");
    let _ = writeln!(out, "  \"seed\": {},", r.seed);
    out.push_str("  \"entries\": [\n");
    for (i, e) in r.entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_events\": {}, \"events_per_sec\": {}}}",
            e.name,
            e.wall_ms,
            e.sim_events.map_or("null".into(), |v| v.to_string()),
            e.events_per_sec
                .map_or("null".into(), |v| format!("{v:.1}")),
        );
        out.push_str(if i + 1 < r.entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"e4_scaling\": [\n");
    for (i, p) in r.scaling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"sim_events\": {}, \
             \"events_per_sec\": {:.1}, \"speedup\": {:.3}}}",
            p.threads, p.wall_ms, p.sim_events, p.events_per_sec, p.speedup,
        );
        out.push_str(if i + 1 < r.scaling.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"e11_knees\": [\n");
    for (i, c) in r.e11_knees.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"batch_max\": {}, \"pipeline\": {}, \"knee_offered_per_s\": {}, \"points\": [",
            c.batch_max,
            c.pipeline,
            c.knee_offered_per_s
                .map_or("null".into(), |v| v.to_string()),
        );
        for (j, p) in c.points.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"offered_per_s\": {}, \"ordered_per_s\": {:.1}, \
                 \"p50_us\": {}, \"p99_us\": {}}}",
                p.offered_per_s, p.ordered_per_s, p.p50_us, p.p99_us,
            );
            out.push_str(if j + 1 < c.points.len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]}");
        out.push_str(if i + 1 < r.e11_knees.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs E11 once and renders it (the `spire-sim e11` body, shared with
/// tests).
pub fn e11_report(seed: u64, steps: usize) -> String {
    let rates = e11_default_rates();
    let rates = &rates[..steps.clamp(1, rates.len())];
    render_saturation(&e11_saturation(seed, rates))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_within_a_process() {
        // Cheapest experiment with a deployment: same seed, same digest;
        // different seed, different digest.
        let a = experiment_fingerprint("e9", 7);
        let b = experiment_fingerprint("e9", 7);
        let c = experiment_fingerprint("e9", 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bench_json_is_wellformed_enough() {
        let r = BenchReport {
            seed: 1,
            entries: vec![
                BenchEntry {
                    name: "e8".into(),
                    wall_ms: 12.5,
                    sim_events: None,
                    events_per_sec: None,
                },
                BenchEntry {
                    name: "e4".into(),
                    wall_ms: 100.0,
                    sim_events: Some(5000),
                    events_per_sec: Some(50_000.0),
                },
            ],
            scaling: vec![ScalingPoint {
                threads: 4,
                wall_ms: 25.0,
                sim_events: 5000,
                events_per_sec: 200_000.0,
                speedup: 4.0,
            }],
            e11_knees: vec![
                KneeCurve {
                    batch_max: 0,
                    pipeline: 1,
                    knee_offered_per_s: Some(1600),
                    points: vec![KneePoint {
                        offered_per_s: 1600,
                        ordered_per_s: 1500.0,
                        p50_us: 2000,
                        p99_us: 9000,
                    }],
                },
                KneeCurve {
                    batch_max: 16,
                    pipeline: 4,
                    knee_offered_per_s: None,
                    points: vec![],
                },
            ],
        };
        let json = bench_json(&r);
        assert!(json.contains("\"schema\": \"spire-bench-v3\""));
        assert!(json.contains("\"sim_events\": null"));
        assert!(json.contains("\"sim_events\": 5000"));
        assert!(json.contains("\"e4_scaling\""));
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.contains("\"e11_knees\""));
        assert!(json.contains("\"knee_offered_per_s\": 1600"));
        assert!(json.contains("\"knee_offered_per_s\": null"));
        assert!(json.contains("\"batch_max\": 16"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
