//! Deterministic discrete-event network simulator.
//!
//! This crate is the substrate every other component of the Spire
//! reproduction runs on. It models, at the fidelity the DSN'19 paper's
//! red-team experiment requires:
//!
//! * **Layer 2**: Ethernet-like frames, switches with *learning* or *static*
//!   MAC tables (optionally with ingress port security), broadcast flooding,
//!   and direct cables (the paper connects the PLC to its proxy with a
//!   physical wire precisely to bypass any switch).
//! * **ARP**: per-interface ARP tables in *dynamic* (poisonable) or *static*
//!   mode, gratuitous-ARP handling, and the "NIC answers ARP for another
//!   NIC's IP" misfeature the paper disables (§III-B).
//! * **Layer 3/4**: packets with IP/port/transport-kind metadata, per-host
//!   firewalls with default-deny profiles, listening ports, and RST vs.
//!   silent-drop semantics (the red team "had no visibility" because closed
//!   hosts drop silently).
//! * **Links**: latency, bandwidth (serialization delay + queueing), random
//!   loss, and up/down state — enough to express denial-of-service bursts.
//! * **Capture taps**: passive, out-of-band packet-metadata capture feeding
//!   the MANA IDS, exactly like the span ports in Figure 3.
//!
//! Time is virtual ([`SimTime`], microseconds); the event queue is a total
//! order (time, then insertion sequence), so every run with the same seed is
//! bit-for-bit reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod capture;
mod exec;
pub mod firewall;
pub mod link;
pub mod packet;
pub mod process;
pub mod queue;
mod shard;
pub mod sim;
pub mod switch;
pub mod time;
pub mod types;
pub mod wire;

pub use capture::{PacketRecord, TapId};
pub use firewall::{Firewall, FirewallPolicy};
pub use link::LinkSpec;
pub use packet::{Packet, TransportKind};
pub use process::{Context, Process};
pub use sim::{InterfaceSpec, NodeSpec, Simulation};
pub use switch::{SwitchId, SwitchMode};
pub use time::{SimDuration, SimTime};
pub use types::{IpAddr, MacAddr, NodeId, Port};
