//! Ground-truth recovery from field devices (§III-A).
//!
//! "If enough replicas crash and lose their state such that it is no
//! longer possible to recover the system state from the remaining correct
//! replicas, the system can automatically reset and rebuild the state by
//! contacting the field devices. In contrast, a traditional BFT system
//! cannot recover from this situation."

use prime::types::Config;

use crate::state::ScadaState;
use crate::updates::ScadaUpdate;

/// Assessment of whether master state survives an assumption breach.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BreachAssessment {
    /// Replicas still holding intact state.
    pub replicas_with_state: u32,
    /// Minimum needed to trust recovered state (`f + 1`).
    pub needed: u32,
    /// Whether replica-based recovery is possible.
    pub recoverable_from_replicas: bool,
}

/// Assesses a crash scenario: with fewer than `f+1` intact replicas, a
/// matching set cannot be distinguished from `f` colluding liars, so
/// replica-based recovery is unsafe.
pub fn assess(config: Config, replicas_with_state: u32) -> BreachAssessment {
    let needed = config.f + 1;
    BreachAssessment {
        replicas_with_state,
        needed,
        recoverable_from_replicas: replicas_with_state >= needed,
    }
}

/// Rebuilds a fresh master state from direct field polls — the recovery
/// path *only* a cyber-physical system has. Each `(scenario, positions)`
/// pair comes from polling that scenario's PLC through its proxy.
pub fn rebuild_from_field(polls: &[(String, Vec<bool>)]) -> ScadaState {
    let mut state = ScadaState::new();
    for (scenario, positions) in polls {
        state.apply(&ScadaUpdate::FieldRebaseline {
            scenario: scenario.clone(),
            positions: positions.clone(),
        });
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breach_assessment_thresholds() {
        let c = Config::plant(); // f=1 → need 2
        assert!(assess(c, 2).recoverable_from_replicas);
        assert!(assess(c, 6).recoverable_from_replicas);
        let breached = assess(c, 1);
        assert!(!breached.recoverable_from_replicas);
        assert_eq!(breached.needed, 2);
        assert!(!assess(c, 0).recoverable_from_replicas);
    }

    #[test]
    fn rebuild_reflects_device_positions() {
        let polls = vec![
            (
                "jhu".to_string(),
                vec![true, false, true, true, true, false, true],
            ),
            ("plant".to_string(), vec![true, true, false]),
        ];
        let state = rebuild_from_field(&polls);
        assert_eq!(
            state.scenario("jhu").expect("scenario").positions,
            vec![true, false, true, true, true, false, true]
        );
        assert_eq!(
            state.scenario("plant").expect("scenario").positions,
            vec![true, true, false]
        );
        // The rebuilt state is a valid baseline for further updates.
        assert_eq!(state.scenario_tags().count(), 2);
    }

    #[test]
    fn rebuild_from_nothing_is_empty() {
        let state = rebuild_from_field(&[]);
        assert_eq!(state.scenario_tags().count(), 0);
    }
}
