//! The full §IV red-team exercise: the commercial system falls in hours;
//! Spire withstands the same attacker, including the staged
//! compromised-replica excursion.
//!
//! Run with: `cargo run --release --example red_team_exercise`

use bench::redteam_experiments::{
    e1_commercial_attacks, e2_spire_network_attacks, e3_replica_excursion,
};

fn main() {
    println!("== Phase 1+2: red team vs. the commercial SCADA system ==\n");
    let commercial = e1_commercial_attacks(2017);
    println!("{}", commercial.render());
    println!(
        "commercial system held: {}\n",
        commercial.target_held("commercial")
    );

    println!("== Phase 3: the same attacks vs. Spire ==\n");
    let spire = e2_spire_network_attacks(2017);
    println!("{}", spire.report.render());
    println!(
        "breaker cycle frames before/after attacks: {} -> {} (service never stopped)",
        spire.frames_before, spire.frames_after
    );
    println!(
        "static-ARP rejections: {}   spire held: {}\n",
        spire.arp_rejections,
        spire.report.target_held("spire")
    );

    println!("== Day 3 excursion: gradually increasing control of one replica ==\n");
    let excursion = e3_replica_excursion(2017);
    for stage in &excursion.stages {
        println!(
            "stage {}: {}\n         disrupted service: {}   {}",
            stage.number, stage.action, stage.disrupted_service, stage.evidence
        );
    }
    println!(
        "\nspire survived the excursion: {} (display frames {} -> {})",
        excursion.spire_survived(),
        excursion.frames_before,
        excursion.frames_after
    );
}
