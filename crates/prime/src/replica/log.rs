//! Pre-ordering and ordering log: PO-Request acceptance, cumulative
//! PO-ARU aggregation, the Pre-Prepare/Prepare/Commit pipeline, plan
//! extension and execution, checkpoints, and catch-up state transfer.

use super::*;

impl<A: Application> Replica<A> {
    /// Accepts a PO-Request whose signed envelope came from its origin —
    /// directly or replayed inside a `PoData` reconciliation reply.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn accept_po_request(
        &mut self,
        envelope: SignedMsg,
        from: ReplicaId,
        origin: ReplicaId,
        po_seq: u64,
        update: SignedUpdate,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        // Only the origin may bind (origin, po_seq) → update: a faulty
        // relayer must not be able to fill foreign slots.
        if from != origin || origin.0 >= self.config.n() || po_counter(po_seq) == 0 {
            return;
        }
        if !update.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        // Incarnation tracking: a higher incarnation from the origin means
        // it recovered; contiguity restarts in the new incarnation.
        let inc = po_incarnation(po_seq);
        let o = origin.0 as usize;
        if origin != self.id && inc > self.origin_inc[o] {
            self.origin_inc[o] = inc;
            self.aru_counter[o] = 0;
        }
        self.po_store.entry((origin.0, po_seq)).or_insert(update);
        self.po_envelopes
            .entry((origin.0, po_seq))
            .or_insert(envelope);
        self.advance_my_aru();
        self.note_unordered(now);
        self.try_execute(now, out);
    }

    pub(super) fn on_po_aru(&mut self, row: AruRow, _out: &mut [OutEvent]) {
        if row.replica.0 >= self.config.n() || row.vector.len() != self.config.n() as usize {
            return;
        }
        if !row.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        let entry = self.latest_rows.entry(row.replica.0);
        match entry {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(row);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                // Keep the row with the largest total coverage (monotone).
                let old_sum: u64 = o.get().vector.iter().sum();
                let new_sum: u64 = row.vector.iter().sum();
                if new_sum > old_sum {
                    o.insert(row);
                }
            }
        }
    }

    pub(super) fn on_pre_prepare(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        matrix: Vec<AruRow>,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if view != self.view || self.in_view_change {
            return;
        }
        if from != self.active_leader_of(view) {
            return;
        }
        if seq <= self.max_committed || seq == 0 {
            return;
        }
        // Validate the matrix: enough distinct, signed rows.
        let mut seen = BTreeSet::new();
        for row in &matrix {
            if row.vector.len() != self.config.n() as usize
                || !row.verify_cached(&self.registry, &mut self.verify_cache)
            {
                return;
            }
            seen.insert(row.replica.0);
        }
        if (seen.len() as u32) < self.active_ordering_quorum() {
            return;
        }
        let digest = Self::matrix_digest(&matrix);
        // A proposal from a newer view supersedes an uncommitted entry a
        // dead view left behind (a partition can cut a pre-prepare off
        // from its prepare quorum; any value that might have committed is
        // protected by the prepared-certificate carryover in
        // `install_view`). Without the replacement the stale entry blocks
        // this sequence in every later view and ordering wedges.
        let replace = match self.pre_prepares.get(&seq) {
            Some((stored_view, _, _)) => *stored_view < view,
            None => true,
        };
        if replace {
            self.pre_prepares.insert(seq, (view, matrix, digest));
        }
        let stored = &self.pre_prepares[&seq];
        if stored.0 != view || stored.2 != digest {
            return; // conflicting proposal for this seq; ignore.
        }
        // Leader's proposal advanced things: reset the suspicion clock.
        self.unordered_since = Some(now);
        if self.sent_prepare.insert((view, seq)) {
            if !self.trace_phase.contains_key(&seq) {
                self.trace_ordering_phase(seq, obs::Stage::PrimePrePrepare);
            }
            let prep = self.sign(PrimeMsg::Prepare { view, seq, digest });
            self.prepares
                .entry((view, seq, digest))
                .or_default()
                .insert(self.id.0);
            out.push(OutEvent::Broadcast(prep));
        }
        self.check_prepared(view, seq, digest, now, out);
    }

    pub(super) fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if view != self.view {
            return;
        }
        self.prepares
            .entry((view, seq, digest))
            .or_default()
            .insert(from.0);
        self.check_prepared(view, seq, digest, now, out);
    }

    /// Opens the next ordering-phase span for `seq`, ending the
    /// previous one. The first phase (pre-prepare) parents on the
    /// oldest traced in-flight update — exact when a single traced
    /// update is in flight (the E5 measurement), approximate under
    /// concurrent traced load.
    pub(super) fn trace_ordering_phase(&mut self, seq: u64, stage: obs::Stage) {
        let parent = match self.trace_phase.get(&seq) {
            Some(prev) => Some(*prev),
            None => self.trace_queue.values().next().copied(),
        };
        if let Some(span) = self.obs.start_span(parent, stage, self.id.0) {
            if let Some(prev) = self.trace_phase.insert(seq, span) {
                self.obs.end_span(Some(prev));
            }
        }
    }

    pub(super) fn check_prepared(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        let Some((pp_view, matrix, pp_digest)) = self.pre_prepares.get(&seq) else {
            return;
        };
        if *pp_view != view || *pp_digest != digest {
            return;
        }
        let prepare_count = self
            .prepares
            .get(&(view, seq, digest))
            .map_or(0, |s| s.len() as u32);
        // The leader does not send Prepare; its pre-prepare counts.
        let have = prepare_count + 1;
        if have >= self.active_ordering_quorum() && self.sent_commit.insert((view, seq)) {
            self.prepared_cert = Some((seq, view, matrix.clone()));
            // The window form keeps every uncommitted certificate; with
            // the pipeline off it mirrors `prepared_cert` (at most one
            // live entry) and is never put on the wire.
            self.prepared_certs.insert(seq, (view, matrix.clone()));
            let commit = self.sign(PrimeMsg::Commit { view, seq, digest });
            self.commits
                .entry((view, seq, digest))
                .or_default()
                .insert(self.id.0);
            out.push(OutEvent::Broadcast(commit));
            self.trace_ordering_phase(seq, obs::Stage::PrimePrepare);
            self.check_committed(view, seq, digest, now, out);
        }
    }

    pub(super) fn on_commit(
        &mut self,
        from: ReplicaId,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        self.commits
            .entry((view, seq, digest))
            .or_default()
            .insert(from.0);
        self.check_committed(view, seq, digest, now, out);
    }

    pub(super) fn check_committed(
        &mut self,
        view: u64,
        seq: u64,
        digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        if self.committed.contains_key(&seq) {
            return;
        }
        let Some((pp_view, matrix, pp_digest)) = self.pre_prepares.get(&seq) else {
            return;
        };
        if *pp_view != view || *pp_digest != digest {
            return;
        }
        let count = self
            .commits
            .get(&(view, seq, digest))
            .map_or(0, |s| s.len() as u32);
        if count >= self.active_ordering_quorum() {
            self.committed.insert(seq, matrix.clone());
            self.trace_ordering_phase(seq, obs::Stage::PrimeCommit);
            self.max_committed = self.max_committed.max(seq);
            if self
                .prepared_cert
                .as_ref()
                .is_some_and(|(s, _, _)| *s == seq)
            {
                self.prepared_cert = None;
            }
            let watermark = self.max_committed;
            self.prepared_certs.retain(|s, _| *s > watermark);
            self.extend_plan();
            // A committed sequence beyond our contiguous plan means we
            // missed earlier commits (partition): treat as a stall so the
            // tick driver escalates to catch-up.
            if self.max_committed > self.planned_through {
                self.stall_since.get_or_insert(now);
            } else if self.exec_plan.is_empty() {
                self.stall_since = None;
            }
            self.try_execute(now, out);
            // Ordering-phase spans for sequences at or below this one
            // have served their purpose; drop them, ending any still
            // open so the journal stays balanced.
            let keep = self.trace_phase.split_off(&(seq + 1));
            for (_, span) in std::mem::replace(&mut self.trace_phase, keep) {
                self.obs.end_span(Some(span));
            }
        }
    }

    /// Extends the execution plan with newly covered updates from
    /// contiguous committed sequences.
    pub(super) fn extend_plan(&mut self) {
        while let Some(matrix) = self.committed.get(&(self.planned_through + 1)) {
            let n = self.config.n() as usize;
            // Deliberately the *static* coverage threshold even inside a
            // restricted epoch: a commit processed by one survivor before
            // the epoch switch and by another after it must yield the
            // same execution plan, so the plan function cannot depend on
            // epoch state.
            let threshold = self.config.coverage_threshold() as usize;
            let mut target = self.plan_cover.clone();
            for (origin, cover) in target.iter_mut().enumerate().take(n) {
                let mut column: Vec<u64> = matrix.iter().map(|row| row.vector[origin]).collect();
                column.sort_unstable_by(|a, b| b.cmp(a));
                if column.len() >= threshold {
                    *cover = (*cover).max(column[threshold - 1]);
                }
            }
            for (origin, (&from_cover, &to_cover)) in self
                .plan_cover
                .clone()
                .iter()
                .zip(target.iter())
                .enumerate()
            {
                if to_cover <= from_cover {
                    continue;
                }
                if po_incarnation(from_cover) == po_incarnation(to_cover) {
                    for s in from_cover + 1..=to_cover {
                        self.exec_plan.push_back((origin as u32, s));
                    }
                } else {
                    // Incarnation jump: the tail of the old incarnation is
                    // abandoned deterministically (all replicas process the
                    // same committed matrices in order, so all abandon the
                    // same slots); the new incarnation executes from 1.
                    let inc = po_incarnation(to_cover);
                    for c in 1..=po_counter(to_cover) {
                        self.exec_plan
                            .push_back((origin as u32, po_compose(inc, c)));
                    }
                }
            }
            self.plan_cover = target;
            self.planned_through += 1;
        }
    }

    /// Drains the execution plan while updates are available.
    pub(super) fn try_execute(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        while let Some(&(origin, po_seq)) = self.exec_plan.front() {
            let Some(signed) = self.po_store.get(&(origin, po_seq)) else {
                // Missing: reconciliation.
                self.stall_since.get_or_insert(now);
                if now.since(self.last_fetch_at) >= SimDuration::from_millis(50) {
                    self.last_fetch_at = now;
                    self.stats.fetches += 1;
                    let fetch = self.sign(PrimeMsg::PoFetch {
                        origin: ReplicaId(origin),
                        po_seq,
                    });
                    out.push(OutEvent::Broadcast(fetch));
                }
                return;
            };
            let update = signed.update.clone();
            self.exec_plan.pop_front();
            self.stall_since = None;
            let client_set = self.executed_clients.entry(update.client).or_default();
            if !client_set.insert(update.client_seq) {
                self.stats.dup_suppressed += 1;
                continue;
            }
            self.exec_seq += 1;
            self.stats.executed += 1;
            self.c_executed.inc();
            self.app.execute(&update, self.exec_seq);
            // Close the update's pre-ordering span and stamp the
            // execution instant, parented on the latest ordering phase
            // (falling back to the queue span under catch-up paths
            // that bypass the three-phase rounds).
            let queue = self.trace_queue.remove(&(update.client, update.client_seq));
            let trace = if queue.is_some() {
                let parent = self
                    .trace_phase
                    .iter()
                    .next_back()
                    .map(|(_, ctx)| *ctx)
                    .or(queue);
                let span = self
                    .obs
                    .instant_span(parent, obs::Stage::PrimeExecute, self.id.0);
                self.obs.end_span(queue);
                span
            } else {
                None
            };
            obs::prof::charge_msg("prime;execute", 1, 0);
            out.push(OutEvent::Execute {
                exec_seq: self.exec_seq,
                update,
                trace,
            });
            // Checkpoint when due.
            if self.exec_seq - self.last_checkpoint_at_exec >= self.timing.checkpoint_interval {
                self.last_checkpoint_at_exec = self.exec_seq;
                let cp = self.sign(PrimeMsg::Checkpoint {
                    exec_seq: self.exec_seq,
                    app_digest: self.app.digest(),
                });
                // Vote for our own checkpoint too.
                self.checkpoint_votes
                    .entry((self.exec_seq, self.app.digest()))
                    .or_default()
                    .insert(self.id.0);
                out.push(OutEvent::Broadcast(cp));
            }
        }
        // Plan drained: if nothing eligible remains, clear suspicion clock.
        if !self.has_unordered_eligible() {
            self.unordered_since = None;
        }
    }

    pub(super) fn has_unordered_eligible(&self) -> bool {
        self.my_aru
            .iter()
            .zip(self.plan_cover.iter())
            .any(|(a, c)| a > c)
            || !self.exec_plan.is_empty()
    }

    pub(super) fn note_unordered(&mut self, now: SimTime) {
        if self.has_unordered_eligible() && self.unordered_since.is_none() {
            self.unordered_since = Some(now);
        }
    }

    pub(super) fn on_po_data(&mut self, original: &[u8], now: SimTime, out: &mut Vec<OutEvent>) {
        // The payload must be the origin's own signed PoRequest envelope.
        let Ok(envelope) = SignedMsg::from_wire(original) else {
            return;
        };
        if !envelope.verify_cached(&self.registry, &mut self.verify_cache) {
            self.stats.bad_sigs += 1;
            return;
        }
        let PrimeMsg::PoRequest {
            origin,
            po_seq,
            update,
        } = envelope.msg.clone()
        else {
            return;
        };
        let from = envelope.from;
        self.accept_po_request(envelope, from, origin, po_seq, update, now, out);
    }

    pub(super) fn on_checkpoint(
        &mut self,
        from: ReplicaId,
        exec_seq: u64,
        app_digest: Digest,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        self.checkpoint_votes
            .entry((exec_seq, app_digest))
            .or_default()
            .insert(from.0);
        let votes = self.checkpoint_votes[&(exec_seq, app_digest)].len() as u32;
        if votes >= self.active_ordering_quorum() && exec_seq > self.stable_checkpoint {
            self.stable_checkpoint = exec_seq;
            out.push(OutEvent::CheckpointStable { exec_seq });
            // Garbage-collect old vote state.
            self.checkpoint_votes.retain(|(s, _), _| *s >= exec_seq);
            // If we are far behind a stable checkpoint, catch up.
            if self.exec_seq + self.timing.checkpoint_interval < exec_seq {
                self.request_catchup(now, out);
            }
        }
    }

    /// Requests replication + application state transfer from peers.
    pub fn request_catchup(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        if self.catching_up {
            return;
        }
        self.catching_up = true;
        self.catchup_started = now;
        self.catchup_attempts = 0;
        self.catchup_offers.clear();
        self.catchup_dedup.clear();
        self.catchup_chunks.clear();
        out.push(OutEvent::StateTransferRequested);
        let req = self.sign(PrimeMsg::CatchupRequest {
            have_exec_seq: self.exec_seq,
        });
        out.push(OutEvent::Broadcast(req));
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_catchup_reply(
        &mut self,
        from: ReplicaId,
        exec_seq: u64,
        app_digest: Digest,
        snapshot: Vec<u8>,
        next_order_seq: u64,
        exec_cover: Vec<u64>,
        view: u64,
        out: &mut Vec<OutEvent>,
    ) {
        if !self.catching_up || exec_seq <= self.exec_seq {
            return;
        }
        if exec_cover.len() != self.config.n() as usize {
            return;
        }
        // A reply with an empty snapshot is the splice marker for a
        // chunked transfer: reassemble the sender's buffered chunks if
        // they are complete and match this reply's exec_seq. A sender
        // with chunking off that legitimately has an empty snapshot has
        // no buffered chunks, so the reply passes through unchanged.
        let snapshot = if snapshot.is_empty() {
            match self.catchup_chunks.get(&from.0) {
                Some((chunk_seq, count, parts))
                    if *chunk_seq == exec_seq && parts.len() as u32 == *count =>
                {
                    let mut whole = Vec::new();
                    for part in parts.values() {
                        whole.extend_from_slice(part);
                    }
                    whole
                }
                _ => snapshot,
            }
        } else {
            snapshot
        };
        // Pair the reply with the sender's `CatchupDedup` companion (sent
        // just ahead of it); absent or mismatched means no table.
        let dedup: DedupTable = match self.catchup_dedup.get(&from.0) {
            Some((e, table)) if *e == exec_seq => table.clone(),
            _ => Vec::new(),
        };
        let key = (exec_seq, app_digest, dedup_digest(&dedup));
        let offer = PrimeMsg::CatchupReply {
            exec_seq,
            app_digest,
            snapshot,
            next_order_seq,
            exec_cover,
            view,
        };
        let active_f = self.active_f();
        let entry = self
            .catchup_offers
            .entry(key)
            .or_insert_with(|| (BTreeSet::new(), offer, dedup));
        entry.0.insert(from.0);
        if entry.0.len() as u32 > active_f {
            // f+1 matching offers: at least one from a correct replica.
            let dedup = entry.2.clone();
            let PrimeMsg::CatchupReply {
                exec_seq,
                app_digest,
                snapshot,
                next_order_seq,
                exec_cover,
                view,
            } = entry.1.clone()
            else {
                return;
            };
            self.app.install_snapshot(&snapshot);
            if self.app.digest() != app_digest {
                // Corrupt snapshot from a faulty replica; discard the group.
                self.catchup_offers.remove(&key);
                return;
            }
            self.exec_seq = exec_seq;
            if !dedup.is_empty() {
                // Empty means the senders do not transfer their dedup
                // tables (`Config::transfer_dedup` off); keep ours rather
                // than wiping it.
                self.install_dedup_table(&dedup);
            }
            self.plan_cover = exec_cover;
            self.planned_through = next_order_seq.saturating_sub(1);
            self.max_committed = self.max_committed.max(self.planned_through);
            self.exec_plan.clear();
            self.view = self.view.max(view);
            self.in_view_change = false;
            self.catching_up = false;
            self.catchup_chunks.clear();
            self.stall_since = None;
            self.last_checkpoint_at_exec = exec_seq;
            self.stats.catchups += 1;
            out.push(OutEvent::StateTransferInstalled { exec_seq });
        }
    }

    pub(super) fn maybe_propose(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        if let ByzMode::DelayLeader(extra) = self.byz {
            if now.since(self.last_pp_at) < self.timing.pp_interval + extra {
                return;
            }
        } else if now.since(self.last_pp_at) < self.timing.pp_interval {
            return;
        }
        if self.byz.is_mute_leader() {
            return;
        }
        if self.config.pipeline > 1 {
            self.maybe_propose_pipelined(now, out);
            return;
        }
        // Only one outstanding proposal at a time — but an entry left by
        // a dead view does not count: it can never gather prepares in
        // this view, so the new leader must re-propose the sequence.
        let next_seq = self.max_committed + 1;
        if self
            .pre_prepares
            .get(&next_seq)
            .is_some_and(|(v, _, _)| *v == self.view)
        {
            return;
        }
        // Collect rows; require a quorum of distinct replicas.
        let rows: Vec<AruRow> = self.latest_rows.values().cloned().collect();
        if (rows.len() as u32) < self.active_ordering_quorum() {
            return;
        }
        // Only propose if coverage advances.
        let n = self.config.n() as usize;
        let threshold = self.config.coverage_threshold() as usize;
        let mut cover = vec![0u64; n];
        for (origin, c) in cover.iter_mut().enumerate() {
            let mut column: Vec<u64> = rows.iter().map(|r| r.vector[origin]).collect();
            column.sort_unstable_by(|a, b| b.cmp(a));
            if column.len() >= threshold {
                *c = column[threshold - 1];
            }
        }
        if cover
            .iter()
            .zip(self.plan_cover.iter())
            .all(|(c, p)| c <= p)
        {
            return;
        }
        self.last_pp_at = now;
        self.propose_matrix(next_seq, rows, now, out);
    }

    /// Pipelined proposal path (`Config::pipeline > 1`): up to `pipeline`
    /// sequences may be in flight above the committed watermark at once,
    /// so the three ordering rounds of sequence `s+1` overlap the
    /// dissemination that feeds `s+2` instead of serializing behind the
    /// commit of `s`. The next free slot is proposed when the current
    /// quorum rows advance coverage beyond everything already planned
    /// *or in flight* — computed statelessly by folding the in-flight
    /// pre-prepare matrices over the plan cover, so no extra state can
    /// drift across view changes or recoveries.
    pub(super) fn maybe_propose_pipelined(&mut self, now: SimTime, out: &mut Vec<OutEvent>) {
        let n = self.config.n() as usize;
        let threshold = self.config.coverage_threshold() as usize;
        let window = self.config.pipeline as u64;
        let fold = |cover: &mut [u64], rows: &[AruRow]| {
            for (origin, c) in cover.iter_mut().enumerate() {
                let mut column: Vec<u64> = rows.iter().map(|r| r.vector[origin]).collect();
                column.sort_unstable_by(|a, b| b.cmp(a));
                if column.len() >= threshold {
                    *c = (*c).max(column[threshold - 1]);
                }
            }
        };
        // Coverage already promised: the executed/planned prefix plus
        // every proposal of this view still in flight above it.
        let mut covered = self.plan_cover.clone();
        let mut in_flight_tip = self.max_committed;
        for (seq, (view, matrix, _)) in self.pre_prepares.range(self.max_committed + 1..) {
            if *view != self.view {
                continue;
            }
            fold(&mut covered, matrix);
            in_flight_tip = in_flight_tip.max(*seq);
        }
        // The lowest window slot not yet proposed in this view. Slots
        // from dead views do not count (they can never gather prepares
        // here), and a slot *below* the in-flight tip is a hole a view
        // change left behind: it must be re-proposed for the committed
        // prefix to become contiguous again.
        let mut next_seq = 0;
        for seq in self.max_committed + 1..=self.max_committed + window {
            if self
                .pre_prepares
                .get(&seq)
                .is_none_or(|(v, _, _)| *v != self.view)
            {
                next_seq = seq;
                break;
            }
        }
        if next_seq == 0 {
            return; // window full
        }
        let rows: Vec<AruRow> = self.latest_rows.values().cloned().collect();
        if (rows.len() as u32) < self.active_ordering_quorum() {
            return;
        }
        // Filling a hole is unconditional (liveness); opening a new tip
        // slot must advance coverage past everything already promised.
        if next_seq > in_flight_tip {
            let mut cover = vec![0u64; n];
            fold(&mut cover, &rows);
            if cover.iter().zip(covered.iter()).all(|(c, p)| c <= p) {
                return;
            }
        }
        self.last_pp_at = now;
        self.propose_matrix(next_seq, rows, now, out);
    }

    pub(super) fn propose_matrix(
        &mut self,
        seq: u64,
        matrix: Vec<AruRow>,
        now: SimTime,
        out: &mut Vec<OutEvent>,
    ) {
        let digest = Self::matrix_digest(&matrix);
        let view = self.view;
        self.stats.proposals += 1;
        self.pre_prepares
            .insert(seq, (view, matrix.clone(), digest));
        if !self.trace_phase.contains_key(&seq) {
            self.trace_ordering_phase(seq, obs::Stage::PrimePrePrepare);
        }
        // The leader counts as prepared implicitly; it still must collect
        // the quorum of Prepares from followers.
        let msg = self.sign(PrimeMsg::PrePrepare { view, seq, matrix });
        out.push(OutEvent::Broadcast(msg));
        let _ = now;
    }

    /// Buffers one chunk of a chunked catch-up transfer, keyed by
    /// sender. The chunks carry no signature of their own beyond the
    /// envelope; integrity is enforced end-to-end, because the installed
    /// snapshot must reproduce the `app_digest` that f+1 senders agreed
    /// on (`on_catchup_reply`), so corrupt or missing chunks discard the
    /// offer group exactly like a corrupt monolithic snapshot.
    pub(super) fn on_catchup_chunk(
        &mut self,
        from: ReplicaId,
        exec_seq: u64,
        index: u32,
        count: u32,
        data: Vec<u8>,
    ) {
        if !self.catching_up || count == 0 || index >= count {
            return;
        }
        let entry = self
            .catchup_chunks
            .entry(from.0)
            .or_insert_with(|| (exec_seq, count, BTreeMap::new()));
        if entry.0 != exec_seq || entry.1 != count {
            // A newer transfer from the same sender supersedes the old
            // buffer; a stale chunk for an older one is dropped.
            if exec_seq > entry.0 {
                *entry = (exec_seq, count, BTreeMap::new());
            } else {
                return;
            }
        }
        entry.2.insert(index, data);
    }
}

/// The wait before catch-up retransmission number `attempt + 1`: one plain
/// `base` timeout for the first retry (identical to a non-backoff retry),
/// then doubling per unanswered round, capped at `16 × base` so a long
/// partition cannot push the next retry arbitrarily far past its heal.
pub fn catchup_backoff(base: SimDuration, attempt: u32) -> SimDuration {
    base.saturating_mul(1u64 << attempt.min(4))
}
