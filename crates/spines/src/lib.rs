//! A reimplementation of the Spines intrusion-tolerant overlay network
//! (Obenshain et al., ICDCS 2016) at the fidelity the DSN'19 deployment
//! paper exercises.
//!
//! Spire runs two Spines networks (Figure 2/3): an *internal* network
//! carrying only the replication protocol between SCADA-master replicas,
//! and an *external* network connecting replicas to the PLC/RTU proxies
//! and HMIs. Each participating host runs a Spines daemon; daemons form an
//! overlay and flood messages with per-source sequence deduplication.
//!
//! Properties reproduced because the red-team experiment tested them:
//!
//! * **Link authentication + encryption** ([`daemon`]): every overlay hop
//!   is sealed with a per-link key derived from a network master secret.
//!   The red team's *modified daemon without keys* produced traffic the
//!   legitimate daemons reject — exactly §IV-B's outcome.
//! * **Intrusion-tolerant mode** ([`SpinesMode`]): the legacy diagnostic
//!   code path (where the red team's patched-binary exploit lived) is
//!   compiled out of intrusion-tolerant operation, so the patched daemon
//!   "was accepted as a valid member of the network" yet "did not have an
//!   effect".
//! * **Source fairness** ([`fairness`]): forwarding drains per-source
//!   queues round-robin, bounding how much a compromised daemon can starve
//!   others — the property the red team attacked from their own lab with
//!   root and source access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod fairness;
pub mod message;
pub mod routing;
pub mod wan;

pub use config::{SpinesConfig, SpinesMode};
pub use daemon::{Delivery, SpinesDaemon};
pub use message::{Destination, MsgKind, SpinesMsg};
pub use wan::{Overlay, WanLink, WanSite, WanTopology};
