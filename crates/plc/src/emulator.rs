//! The PLC emulator as a [`simnet`] process.
//!
//! Speaks Modbus/TCP framing over the simulator (on the standard port 502)
//! whether it is attached to a switch (the exposed commercial deployment)
//! or to a direct cable behind a proxy (the Spire deployment) — the *same
//! device* in both experiments; only the network placement differs.
//!
//! Every `scan_interval` the emulator runs one scan cycle, like OpenPLC:
//!
//! 1. adopt any newly uploaded configuration image (if it parses),
//! 2. map coil values through the configuration to breaker commands,
//! 3. step breaker mechanics (operate delays),
//! 4. publish positions to discrete inputs and currents to input
//!    registers.

use modbus::{execute, execute_traced, DataStore, Request, Response, TcpFrame};
use obs::trace::{Stage, TraceCtx};
use obs::ObsHub;
use simnet::packet::Packet;
use simnet::process::{Context, Process};
use simnet::time::{SimDuration, SimTime};
use simnet::types::Port;

use crate::breaker::BreakerBank;
use crate::logic::LogicConfig;
use crate::topology::{PowerTopology, Scenario};

/// The standard Modbus port the emulator listens on.
pub const PLC_MODBUS_PORT: Port = Port(502);

const SCAN_TIMER: u64 = 1;

/// An emulated PLC controlling one scenario topology.
pub struct PlcEmulator {
    topology: PowerTopology,
    bank: BreakerBank,
    store: DataStore,
    config: LogicConfig,
    last_adopted_image: Vec<u8>,
    scan_interval: SimDuration,
    /// Modbus requests answered.
    pub requests_served: u64,
    /// Frames that failed to parse (malformed / tampered).
    pub invalid_frames: u64,
    /// Configuration images adopted after upload (forensics).
    pub configs_adopted: u64,
    /// Breaker position changes, as `(time, breaker, closed)`.
    pub position_log: Vec<(SimTime, u16, bool)>,
    /// Observability hub (private by default; deployments share theirs
    /// via [`PlcEmulator::attach_obs`]).
    obs: ObsHub,
    /// Component id used on journaled spans (the proxy/PLC index).
    trace_node: u32,
    /// Detect span opened by a physical flip, not yet published.
    armed_trace: Option<TraceCtx>,
    /// Detect span whose position change a scan has published; handed
    /// to the next positions poll.
    visible_trace: Option<TraceCtx>,
    /// Modbus-write span of a commanded operation awaiting mechanics.
    pending_cmd_trace: Option<TraceCtx>,
}

impl PlcEmulator {
    /// Creates an emulator for a scenario with typical timings (10 ms scan,
    /// 40 ms breaker operate delay).
    pub fn new(scenario: Scenario) -> Self {
        Self::with_timing(
            scenario,
            SimDuration::from_millis(10),
            SimDuration::from_millis(40),
        )
    }

    /// Creates an emulator with explicit scan interval and operate delay.
    pub fn with_timing(
        scenario: Scenario,
        scan_interval: SimDuration,
        operate_delay: SimDuration,
    ) -> Self {
        let topology = scenario.topology();
        let n = topology.breaker_count();
        let mut store = DataStore::new(n.max(1), n.max(8));
        let config = LogicConfig::factory();
        let image = config.to_image();
        store.config_image = image.clone();
        store.device_id = format!("OpenPLC-emu scenario={}", scenario.tag());
        // Coils start closed to match the initially-closed breaker bank.
        for i in 0..n {
            store.set_coil(i as u16, true);
            store.set_discrete_input(i as u16, true);
        }
        PlcEmulator {
            topology,
            bank: BreakerBank::new(n, operate_delay),
            store,
            config,
            last_adopted_image: image,
            scan_interval,
            requests_served: 0,
            invalid_frames: 0,
            configs_adopted: 0,
            position_log: Vec::new(),
            obs: ObsHub::new(),
            trace_node: 0,
            armed_trace: None,
            visible_trace: None,
            pending_cmd_trace: None,
        }
    }

    /// Replaces the private hub with the deployment's shared one and
    /// records the PLC's index for span attribution.
    pub fn attach_obs(&mut self, hub: &ObsHub, node: u32) {
        self.obs = hub.clone();
        self.trace_node = node;
    }

    /// The electrical topology under control.
    pub fn topology(&self) -> &PowerTopology {
        &self.topology
    }

    /// Current mechanical breaker positions.
    pub fn positions(&self) -> Vec<bool> {
        self.bank.positions()
    }

    /// The currently active logic configuration.
    pub fn config(&self) -> &LogicConfig {
        &self.config
    }

    /// Direct access to the Modbus data store (tests and the direct-wire
    /// proxy use this; network peers go through packets).
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// Count of loads currently energized (derived ground truth).
    pub fn energized_loads(&self) -> usize {
        self.topology.energized_count(&self.bank.positions())
    }

    /// Runs one scan cycle at `now` (public so the direct-wire proxy and
    /// unit tests can drive the device without a simulator).
    pub fn scan(&mut self, now: SimTime) {
        // 1. Adopt a newly uploaded config if it parses.
        if self.store.config_image != self.last_adopted_image {
            if let Ok(cfg) = LogicConfig::from_image(&self.store.config_image) {
                self.config = cfg;
                self.configs_adopted += 1;
            }
            self.last_adopted_image = self.store.config_image.clone();
        }
        // 2. Coils → commands through the logic config.
        for i in 0..self.bank.len() {
            let coil = self.store.coil(i as u16).unwrap_or(false);
            if let Some(cmd) = self.config.transform_command(i, coil) {
                self.bank.command(i, cmd, now);
            }
        }
        // 3. Mechanics.
        for idx in self.bank.step(now) {
            let closed = self.bank.positions()[idx];
            self.position_log.push((now, idx as u16, closed));
            // A commanded operation completed its operate delay: the
            // mechanical actuation terminates the command trace.
            let cmd = self.pending_cmd_trace.take();
            let _ = self.obs.instant_span(cmd, Stage::Actuate, self.trace_node);
        }
        // 4. Publish feedback.
        let positions = self.bank.positions();
        for (i, &closed) in positions.iter().enumerate() {
            self.store.set_discrete_input(i as u16, closed);
            let current = self.topology.breaker_current(i as u16, &positions);
            self.store.set_input(i as u16, current);
        }
        // A physically flipped position is now visible to polls; the
        // next positions read carries its Detect span onward.
        if self.armed_trace.is_some() {
            self.visible_trace = self.armed_trace.take();
        }
    }

    /// Handles one Modbus request PDU, returning the response PDU.
    pub fn handle_request(&mut self, req: &Request) -> Response {
        self.requests_served += 1;
        execute(req, &mut self.store)
    }

    /// Physically operates a breaker (the §V measurement device, or a
    /// field crew): the mechanical position changes immediately and the
    /// coil follows, bypassing the network command path entirely. The next
    /// scan publishes the new position to the discrete inputs.
    pub fn force_breaker(&mut self, idx: u16, closed: bool, now: SimTime) {
        if self.bank.force_position(idx as usize, closed) {
            self.store.set_coil(idx, closed);
            self.position_log.push((now, idx, closed));
            // Root a status trace at the physical event. Ends when a
            // positions poll picks the change up.
            self.armed_trace = self.obs.start_root(Stage::Detect, self.trace_node);
        }
    }

    /// [`PlcEmulator::handle_request`] for network requests: writes
    /// stamp Modbus-write spans under the request packet's context.
    fn handle_request_traced(&mut self, req: &Request, parent: Option<TraceCtx>) -> Response {
        self.requests_served += 1;
        let (resp, write_span) =
            execute_traced(req, &mut self.store, &self.obs, parent, self.trace_node);
        if write_span.is_some() {
            self.pending_cmd_trace = write_span;
        }
        resp
    }
}

impl Process for PlcEmulator {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.listen(PLC_MODBUS_PORT);
        ctx.set_timer(self.scan_interval, SCAN_TIMER);
        ctx.log("plc: online");
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: u64) {
        if timer == SCAN_TIMER {
            self.scan(ctx.now());
            ctx.set_timer(self.scan_interval, SCAN_TIMER);
        }
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Packet) {
        if pkt.dst_port != PLC_MODBUS_PORT {
            return;
        }
        let Some(frame) = TcpFrame::decode(&pkt.payload) else {
            self.invalid_frames += 1;
            return;
        };
        let Some(req) = Request::decode(&frame.pdu) else {
            self.invalid_frames += 1;
            return;
        };
        obs::prof::charge_msg("plc;io", 1, 0);
        let resp = self.handle_request_traced(&req, ctx.trace());
        if matches!(req, Request::ReadDiscreteInputs { .. }) {
            if let Some(detect) = self.visible_trace.take() {
                // This poll observes the flipped position: close the
                // Detect span and let the reply carry it to the poller.
                self.obs.end_span(Some(detect));
                ctx.set_trace(Some(detect));
            }
        }
        let reply_frame = TcpFrame::new(frame.header.transaction, frame.header.unit, resp.encode());
        let reply = Packet::udp(
            ctx.ip(0),
            pkt.src_ip,
            PLC_MODBUS_PORT,
            pkt.src_port,
            bytes::Bytes::from(reply_frame.encode()),
        );
        ctx.send(0, reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_applies_coil_to_breaker_after_delay() {
        let mut plc = PlcEmulator::new(Scenario::RedTeamDistribution);
        assert_eq!(plc.energized_loads(), 4);
        // Open the main breaker via a Modbus write.
        let resp = plc.handle_request(&Request::WriteSingleCoil {
            address: 0,
            value: false,
        });
        assert_eq!(
            resp,
            Response::WriteSingleCoil {
                address: 0,
                value: false
            }
        );
        plc.scan(SimTime(10_000)); // command issued, mechanics pending
        assert!(plc.positions()[0]);
        plc.scan(SimTime(60_000)); // past operate delay
        assert!(!plc.positions()[0]);
        assert_eq!(plc.energized_loads(), 0);
        assert_eq!(plc.position_log.len(), 1);
        // Feedback published.
        assert_eq!(plc.store().discrete_input(0), Some(false));
        assert_eq!(plc.store().input(0), Some(0));
    }

    #[test]
    fn currents_published_for_closed_breakers() {
        let mut plc = PlcEmulator::new(Scenario::RedTeamDistribution);
        plc.scan(SimTime(0));
        assert_eq!(plc.store().input(0), Some(400));
        assert_eq!(plc.store().input(1), Some(200));
        assert_eq!(plc.store().input(3), Some(100));
    }

    #[test]
    fn tampered_config_upload_takes_control() {
        let mut plc = PlcEmulator::new(Scenario::RedTeamDistribution);
        // Attacker dumps config...
        let dump = plc.handle_request(&Request::ConfigDownload);
        let Response::ConfigImage { image } = dump else {
            panic!("expected image")
        };
        let mut cfg = LogicConfig::from_image(&image).expect("factory parses");
        // ...modifies it to force every breaker open...
        cfg.force_open_mask = 0x7F;
        // ...and uploads it.
        let up = plc.handle_request(&Request::ConfigUpload {
            image: cfg.to_image(),
        });
        assert_eq!(up, Response::ConfigAccepted);
        plc.scan(SimTime(10_000));
        plc.scan(SimTime(100_000));
        // All breakers forced open despite coils commanding closed.
        assert!(plc.positions().iter().all(|&p| !p));
        assert_eq!(plc.energized_loads(), 0);
        assert_eq!(plc.configs_adopted, 1);
        assert!(!plc.config().is_factory());
    }

    #[test]
    fn invalid_config_upload_is_ignored() {
        let mut plc = PlcEmulator::new(Scenario::PlantSubset);
        plc.handle_request(&Request::ConfigUpload {
            image: vec![0xde, 0xad],
        });
        plc.scan(SimTime(10_000));
        assert!(plc.config().is_factory());
        assert_eq!(plc.configs_adopted, 0);
    }

    #[test]
    fn device_id_names_scenario() {
        let mut plc = PlcEmulator::new(Scenario::EmulatedGeneration(2));
        let resp = plc.handle_request(&Request::ReadDeviceId);
        let Response::DeviceId { text } = resp else {
            panic!("expected id")
        };
        assert!(text.contains("gen2"));
    }

    #[test]
    fn positions_via_modbus_poll() {
        let mut plc = PlcEmulator::new(Scenario::PlantSubset);
        plc.scan(SimTime(0));
        let resp = plc.handle_request(&Request::ReadDiscreteInputs {
            address: 0,
            count: 3,
        });
        assert_eq!(
            resp,
            Response::Bits {
                function: 0x02,
                values: vec![true, true, true]
            }
        );
    }
}
