//! The commercial half of the Figure 3 laboratory: an enterprise network
//! (historian, office machines) trunked through a weak boundary to the
//! commercial operations network (primary/backup masters, HMI, and the
//! PLC sitting *directly on the switch* — no proxy).
//!
//! The whole point of this side is that it falls: the boundary firewall
//! let the red team reach the operations network "within only a few
//! hours", the PLC answered unauthenticated Modbus, and master↔HMI
//! traffic could be intercepted and forged.

use plc::emulator::PlcEmulator;
use plc::topology::Scenario;
use scada::commercial::{CommercialHmi, CommercialMaster, MasterRole};
use simnet::capture::TapId;
use simnet::link::LinkSpec;
use simnet::sim::{InterfaceSpec, NodeSpec, Simulation};
use simnet::switch::{SwitchId, SwitchMode};
use simnet::types::{IpAddr, NodeId};

/// Addresses on the commercial operations network.
pub mod addr {
    use simnet::types::IpAddr;
    /// The exposed PLC.
    pub const PLC: IpAddr = IpAddr::new(10, 30, 0, 10);
    /// Primary SCADA master.
    pub const PRIMARY: IpAddr = IpAddr::new(10, 30, 0, 11);
    /// Backup SCADA master.
    pub const BACKUP: IpAddr = IpAddr::new(10, 30, 0, 12);
    /// Operator HMI.
    pub const HMI: IpAddr = IpAddr::new(10, 30, 0, 13);
    /// Historian (PI server) on the enterprise network.
    pub const HISTORIAN: IpAddr = IpAddr::new(10, 40, 0, 10);
    /// Attacker foothold on the enterprise network.
    pub const ENTERPRISE_ATTACKER: IpAddr = IpAddr::new(10, 40, 0, 66);
    /// Attacker placed directly on the operations network.
    pub const OPS_ATTACKER: IpAddr = IpAddr::new(10, 30, 0, 66);
}

/// The built commercial lab.
pub struct CommercialLab {
    /// The simulation.
    pub sim: Simulation,
    /// The lab-wide observability hub (metrics, journal, trace spans).
    pub obs: obs::ObsHub,
    /// Enterprise switch.
    pub enterprise_switch: SwitchId,
    /// Commercial operations switch.
    pub ops_switch: SwitchId,
    /// The exposed PLC node.
    pub plc: NodeId,
    /// Primary master node.
    pub primary: NodeId,
    /// Backup master node.
    pub backup: NodeId,
    /// HMI node.
    pub hmi: NodeId,
    /// Historian node (enterprise).
    pub historian: NodeId,
    /// MANA tap on the enterprise switch (MANA 1 in Figure 3).
    pub enterprise_tap: TapId,
    /// MANA tap on the commercial ops switch (MANA 3 in Figure 3).
    pub ops_tap: TapId,
    spare_ops_ports: Vec<usize>,
    spare_enterprise_ports: Vec<usize>,
}

/// A do-nothing process for passive hosts (historian, office machines).
struct PassiveHost;
impl simnet::process::Process for PassiveHost {}

impl CommercialLab {
    /// Builds the lab. `boundary_open` models the weak enterprise/ops
    /// firewall the red team walked through (true reproduces the exercise;
    /// false severs the networks).
    pub fn build(seed: u64, boundary_open: bool) -> Self {
        let mut sim = Simulation::new(seed);
        let obs = obs::ObsHub::new();
        sim.attach_obs(&obs);
        // All commercial/enterprise hosts: dynamic ARP, open firewalls —
        // "NIST-recommended best practices" did not include any of §III-B.
        let plc = sim.add_node(NodeSpec::new(
            "commercial-plc",
            vec![InterfaceSpec::dynamic(addr::PLC)],
            Box::new(PlcEmulator::new(Scenario::RedTeamDistribution)),
        ));
        let primary = sim.add_node(NodeSpec::new(
            "commercial-primary",
            vec![InterfaceSpec::dynamic(addr::PRIMARY)],
            Box::new(CommercialMaster::new(
                MasterRole::Primary,
                addr::PLC,
                addr::HMI,
                addr::BACKUP,
                7,
            )),
        ));
        let backup = sim.add_node(NodeSpec::new(
            "commercial-backup",
            vec![InterfaceSpec::dynamic(addr::BACKUP)],
            Box::new(CommercialMaster::new(
                MasterRole::Backup,
                addr::PLC,
                addr::HMI,
                addr::PRIMARY,
                7,
            )),
        ));
        let hmi = sim.add_node(NodeSpec::new(
            "commercial-hmi",
            vec![InterfaceSpec::dynamic(addr::HMI)],
            Box::new(CommercialHmi::new(addr::PRIMARY)),
        ));
        let historian = sim.add_node(NodeSpec::new(
            "historian",
            vec![InterfaceSpec::dynamic(addr::HISTORIAN)],
            Box::new(PassiveHost),
        ));

        let ops_switch = sim.add_switch(10, SwitchMode::Learning);
        sim.connect(plc, 0, ops_switch, 0, LinkSpec::lan());
        sim.connect(primary, 0, ops_switch, 1, LinkSpec::lan());
        sim.connect(backup, 0, ops_switch, 2, LinkSpec::lan());
        sim.connect(hmi, 0, ops_switch, 3, LinkSpec::lan());

        let enterprise_switch = sim.add_switch(6, SwitchMode::Learning);
        sim.connect(historian, 0, enterprise_switch, 0, LinkSpec::lan());

        if boundary_open {
            // The "firewall" between the networks: a router that, per the
            // exercise's outcome, passes the traffic that matters.
            sim.connect_switches((enterprise_switch, 1), (ops_switch, 4), LinkSpec::wan());
        }

        let enterprise_tap = sim.add_tap(enterprise_switch);
        let ops_tap = sim.add_tap(ops_switch);

        // Join every traced component to the lab hub, labelled by node.
        if let Some(p) = sim.process_mut::<PlcEmulator>(plc) {
            p.attach_obs(&obs, plc.0);
        }
        if let Some(m) = sim.process_mut::<CommercialMaster>(primary) {
            m.attach_obs(&obs, primary.0);
        }
        if let Some(m) = sim.process_mut::<CommercialMaster>(backup) {
            m.attach_obs(&obs, backup.0);
        }
        if let Some(h) = sim.process_mut::<CommercialHmi>(hmi) {
            h.attach_obs(&obs, hmi.0);
        }

        CommercialLab {
            sim,
            obs,
            enterprise_switch,
            ops_switch,
            plc,
            primary,
            backup,
            hmi,
            historian,
            enterprise_tap,
            ops_tap,
            spare_ops_ports: vec![5, 6, 7, 8, 9],
            spare_enterprise_ports: vec![2, 3, 4, 5],
        }
    }

    /// Attaches an attacker to the enterprise network (phase 1 position).
    pub fn attach_enterprise_attacker(&mut self, spec: NodeSpec) -> NodeId {
        let port = self
            .spare_enterprise_ports
            .pop()
            .expect("spare enterprise port");
        let node = self.sim.add_node(spec);
        self.sim
            .connect(node, 0, self.enterprise_switch, port, LinkSpec::lan());
        node
    }

    /// Attaches an attacker directly to the operations network (phase 2).
    pub fn attach_ops_attacker(&mut self, spec: NodeSpec) -> NodeId {
        let port = self.spare_ops_ports.pop().expect("spare ops port");
        let node = self.sim.add_node(spec);
        self.sim
            .connect(node, 0, self.ops_switch, port, LinkSpec::lan());
        node
    }

    /// Convenience: standard attacker node spec (promiscuous, open
    /// firewall, dynamic ARP).
    pub fn attacker_spec(ip: IpAddr, attacker: crate::attacker::Attacker) -> NodeSpec {
        let mut spec = NodeSpec::new(
            "red-team",
            vec![InterfaceSpec::dynamic(ip)],
            Box::new(attacker),
        );
        spec.promiscuous = true;
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacker::{AttackStep, Attacker};
    use simnet::time::{SimDuration, SimTime};

    #[test]
    fn commercial_system_operates_normally() {
        let mut lab = CommercialLab::build(1, true);
        lab.sim.run_for(SimDuration::from_secs(2));
        let hmi = lab.sim.process_ref::<CommercialHmi>(lab.hmi).expect("hmi");
        assert_eq!(hmi.positions, vec![true; 7]);
    }

    #[test]
    fn enterprise_attacker_dumps_and_reuploads_plc_config() {
        // §IV-B phase 1: from the enterprise network, through the weak
        // boundary, the red team dumped the PLC's configuration and
        // uploaded a modified one, taking control of the device.
        let mut lab = CommercialLab::build(2, true);
        let mut attacker = Attacker::new();
        attacker.schedule(SimTime(500_000), AttackStep::ModbusDump { plc: addr::PLC });
        let node = lab.attach_enterprise_attacker(CommercialLab::attacker_spec(
            addr::ENTERPRISE_ATTACKER,
            attacker,
        ));
        lab.sim.run_for(SimDuration::from_secs(2));
        // The dump succeeded across the boundary.
        let obs = &lab
            .sim
            .process_ref::<Attacker>(node)
            .expect("attacker")
            .observed;
        assert!(obs.device_id.is_some(), "device identification read");
        let config = obs
            .dumped_config
            .clone()
            .expect("config dumped from enterprise network");
        // Phase 2: modify and upload — force all breakers open.
        let mut cfg = plc::logic::LogicConfig::from_image(&config).expect("parses");
        cfg.force_open_mask = 0x7F;
        let mut attacker2 = Attacker::new();
        attacker2.schedule(
            SimTime(2_100_000),
            AttackStep::ModbusUpload {
                plc: addr::PLC,
                image: cfg.to_image(),
            },
        );
        let node2 = lab.attach_enterprise_attacker(CommercialLab::attacker_spec(
            IpAddr::new(10, 40, 0, 67),
            attacker2,
        ));
        lab.sim.run_for(SimDuration::from_secs(3));
        assert!(
            lab.sim
                .process_ref::<Attacker>(node2)
                .expect("attacker")
                .observed
                .upload_acked,
            "upload acknowledged"
        );
        let plc = lab.sim.process_ref::<PlcEmulator>(lab.plc).expect("plc");
        assert_eq!(
            plc.energized_loads(),
            0,
            "attacker opened every breaker via config"
        );
        assert!(!plc.config().is_factory());
    }

    #[test]
    fn closed_boundary_blocks_enterprise_attacker() {
        let mut lab = CommercialLab::build(3, false);
        let mut attacker = Attacker::new();
        attacker.schedule(SimTime(500_000), AttackStep::ModbusDump { plc: addr::PLC });
        let node = lab.attach_enterprise_attacker(CommercialLab::attacker_spec(
            addr::ENTERPRISE_ATTACKER,
            attacker,
        ));
        lab.sim.run_for(SimDuration::from_secs(2));
        let obs = &lab
            .sim
            .process_ref::<Attacker>(node)
            .expect("attacker")
            .observed;
        assert!(obs.device_id.is_none(), "no path to the operations network");
    }

    #[test]
    fn ops_attacker_mitm_hides_breaker_state_from_operator() {
        // §IV-B phase 2: on the operations network, the red team disrupted
        // master↔HMI communication, "sending modified updates to the HMI".
        let mut lab = CommercialLab::build(4, true);
        lab.sim.run_for(SimDuration::from_secs(1));
        let mut attacker = Attacker::new();
        // Poison the segment: claim the HMI's IP so the primary's status
        // frames for the HMI are steered through the attacker.
        attacker.schedule(
            SimTime(1_100_000),
            AttackStep::ArpPoison {
                victim: addr::PRIMARY,
                claim_ip: addr::HMI,
                count: 5,
            },
        );
        // Then open a breaker via unauthenticated command...
        attacker.schedule(
            SimTime(1_500_000),
            AttackStep::InjectCommercialCommand {
                master: addr::PRIMARY,
                breaker: 0,
                close: false,
            },
        );
        attacker.mitm = Some(crate::attacker::MitmConfig {
            rewrite_status_all_closed: true,
            forward: true,
        });
        let node =
            lab.attach_ops_attacker(CommercialLab::attacker_spec(addr::OPS_ATTACKER, attacker));
        lab.sim.run_for(SimDuration::from_secs(4));
        // The breaker is really open...
        let plc = lab.sim.process_ref::<PlcEmulator>(lab.plc).expect("plc");
        assert!(!plc.positions()[0], "B10-1 opened by injected command");
        // ...but the operator's screen says everything is closed.
        let hmi = lab.sim.process_ref::<CommercialHmi>(lab.hmi).expect("hmi");
        assert_eq!(
            hmi.positions,
            vec![true; 7],
            "operator sees forged all-closed state"
        );
        let obs = &lab
            .sim
            .process_ref::<Attacker>(node)
            .expect("attacker")
            .observed;
        assert!(
            obs.intercepted >= 1,
            "status traffic steered through attacker"
        );
        assert!(obs.rewritten >= 1, "status frames rewritten in flight");
    }
}
